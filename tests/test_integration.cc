/**
 * @file
 * Cross-module integration tests: preset wiring, crashes landing in
 * the middle of an operation (memTest's in-flight tolerance), the
 * journal wrapping its log, recovery under every protection mode,
 * and crash/recovery under each workload.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "fault/injector.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/andrew.hh"
#include "workload/memtest.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(u64 seed = 1)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.seed = seed;
    return c;
}

} // namespace

TEST(Presets, MapToExpectedKnobs)
{
    using os::SystemPreset;
    auto mfs = os::systemPreset(SystemPreset::MemoryFs);
    EXPECT_EQ(mfs.fs, os::FsKind::Mfs);
    EXPECT_FALSE(mfs.rio);

    auto advfs = os::systemPreset(SystemPreset::AdvFsJournal);
    EXPECT_EQ(advfs.fs, os::FsKind::Journal);
    EXPECT_EQ(advfs.metadata, os::MetadataPolicy::Logged);

    auto ufs = os::systemPreset(SystemPreset::UfsDefault);
    EXPECT_EQ(ufs.metadata, os::MetadataPolicy::Sync);
    EXPECT_EQ(ufs.data, os::DataPolicy::Async64K);
    EXPECT_FALSE(ufs.fsyncOnClose);

    auto wtc = os::systemPreset(SystemPreset::UfsWriteThroughClose);
    EXPECT_TRUE(wtc.fsyncOnClose);
    EXPECT_EQ(wtc.data, os::DataPolicy::Async64K);

    auto wtw = os::systemPreset(SystemPreset::UfsWriteThroughWrite);
    EXPECT_EQ(wtw.data, os::DataPolicy::SyncOnWrite);

    auto rioNp = os::systemPreset(SystemPreset::RioNoProtection);
    EXPECT_TRUE(rioNp.rio);
    EXPECT_EQ(rioNp.protection, os::ProtectionMode::Off);
    EXPECT_EQ(rioNp.metadata, os::MetadataPolicy::Never);

    auto rioP = os::systemPreset(SystemPreset::RioProtected);
    EXPECT_TRUE(rioP.rio);
    EXPECT_EQ(rioP.protection, os::ProtectionMode::VmTlb);

    // Names and permanence strings exist and are distinct.
    std::set<std::string> names;
    for (int preset = 0; preset < 8; ++preset) {
        names.insert(os::systemPresetName(
            static_cast<os::SystemPreset>(preset)));
        EXPECT_NE(std::string(os::systemPresetPermanence(
                      static_cast<os::SystemPreset>(preset))),
                  "?");
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(Integration, CrashInsideAnOperationIsTolerated)
{
    // Arm a panic on the UBC write path so the crash lands *inside*
    // a memTest operation; the verifier must tolerate the in-flight
    // op (paper: blocks marked "changing" cannot be judged).
    sim::Machine machine(machineConfig(3));
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioNoProtection);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    wl::MemTestConfig memtestConfig;
    memtestConfig.seed = 41;
    wl::MemTest memtest(*kernel, memtestConfig);
    memtest.setup();
    for (int op = 0; op < 300; ++op)
        memtest.step();

    os::Manifestation m;
    m.kind = os::Manifestation::Kind::PanicNow;
    kernel->procs().arm(os::ProcId::UfsWriteFile, m);

    bool crashed = false;
    try {
        for (int op = 0; op < 1000; ++op)
            memtest.step();
    } catch (const sim::CrashException &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed);

    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);
    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);

    const auto result = memtest.verify(rebooted);
    EXPECT_FALSE(result.corrupt())
        << (result.details.empty() ? std::string()
                                   : result.details.front());
}

TEST(Integration, JournalWrapCheckpointsAndStaysConsistent)
{
    sim::Machine machine(machineConfig(5));
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::AdvFsJournal));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();
    // The log holds 32 records (64 blocks / 2); force several wraps.
    std::vector<u8> data(2000, 1);
    for (int round = 0; round < 30; ++round) {
        for (int i = 0; i < 10; ++i) {
            const std::string path = "/w" + std::to_string(i);
            rio::wl::tolerate(vfs.unlink(path));
            auto fd = vfs.open(proc, path,
                               os::OpenFlags::writeOnly());
            if (fd.ok()) {
                rio::wl::tolerate(vfs.write(proc, fd.value(), data));
                rio::wl::tolerate(vfs.close(proc, fd.value()));
            }
        }
    }
    EXPECT_GT(kernel.journal().recordsWritten(), 32u);
    // Lockdep is on by default: a heavy workload must not produce a
    // single rank-ordering violation in the fs -> ubc -> buf lattice.
    EXPECT_GT(kernel.locks().lockdepEvents(), 0u);
    EXPECT_EQ(kernel.locks().rankViolations(), 0u)
        << (kernel.locks().rankViolationLog().empty()
                ? std::string()
                : kernel.locks().rankViolationLog()[0]);
    kernel.shutdown();

    os::Kernel second(machine,
                      os::systemPreset(os::SystemPreset::AdvFsJournal));
    second.boot(nullptr, false);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(
            second.ufs().namei("/w" + std::to_string(i)).ok());
    }
}

class RecoveryAcrossProtectionModes
    : public ::testing::TestWithParam<os::ProtectionMode>
{
};

TEST_P(RecoveryAcrossProtectionModes, CrashRecoverVerify)
{
    sim::Machine machine(machineConfig(7));
    os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    config.protection = GetParam();
    core::RioOptions options;
    options.protection = GetParam();
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    wl::MemTestConfig memtestConfig;
    memtestConfig.seed = 43;
    wl::MemTest memtest(*kernel, memtestConfig);
    memtest.setup();
    for (int op = 0; op < 600; ++op)
        memtest.step();

    try {
        machine.crash(sim::CrashCause::KernelPanic, "param crash");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);
    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);
    const auto result = memtest.verify(rebooted);
    EXPECT_FALSE(result.corrupt());
}

INSTANTIATE_TEST_SUITE_P(AllModes, RecoveryAcrossProtectionModes,
                         ::testing::Values(os::ProtectionMode::Off,
                                           os::ProtectionMode::VmTlb,
                                           os::ProtectionMode::CodePatch));

TEST(Integration, AndrewSurvivesRioCrashMidCompile)
{
    sim::Machine machine(machineConfig(11));
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    core::RioOptions options;
    options.protection = config.protection;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    wl::AndrewConfig andrewConfig;
    andrewConfig.files = 12;
    andrewConfig.dirs = 3;
    wl::Andrew andrew(*kernel, andrewConfig);
    for (int step = 0; step < 60; ++step)
        andrew.step();

    try {
        machine.crash(sim::CrashCause::KernelPanic, "mid-andrew");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);
    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);

    // The already-copied sources must be intact byte for byte.
    os::Process proc(1);
    std::vector<u8> expected, actual;
    auto st = rebooted.vfs().stat("/andrew/dir0/src0.c");
    ASSERT_TRUE(st.ok());
    expected.resize(st.value().size);
    wl::fillPattern(expected, andrewConfig.seed * 31 + 0);
    actual.resize(st.value().size);
    auto fd = rebooted.vfs().open(proc, "/andrew/dir0/src0.c",
                                  os::OpenFlags::readOnly());
    ASSERT_TRUE(fd.ok());
    rio::wl::tolerate(rebooted.vfs().read(proc, fd.value(), actual));
    EXPECT_EQ(actual, expected);
}

TEST(Integration, BackToBackCrashesAccumulateNoDamage)
{
    sim::Machine machine(machineConfig(13));
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    core::RioOptions options;
    options.protection = config.protection;

    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    wl::MemTestConfig memtestConfig;
    memtestConfig.seed = 47;
    memtestConfig.maxFileSetBytes = 512 * 1024;
    wl::MemTest memtest(*kernel, memtestConfig);
    memtest.setup();

    for (int round = 0; round < 5; ++round) {
        for (int op = 0; op < 200; ++op)
            memtest.step();
        try {
            machine.crash(sim::CrashCause::KernelPanic,
                          "round " + std::to_string(round));
        } catch (const sim::CrashException &) {
        }
        rio->deactivate();
        rio.reset();
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);
        core::WarmReboot warm(machine);
        auto report = warm.dumpAndRestoreMetadata();
        rio = std::make_unique<core::RioSystem>(machine, options);
        kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), false);
        warm.restoreData(kernel->vfs(), report);

        // memTest carries on against the rebooted kernel — its model
        // must keep matching across every crash/reboot cycle.
        memtest.rebind(*kernel);
        const auto result = memtest.verify(*kernel);
        ASSERT_FALSE(result.corrupt())
            << "round " << round << ": "
            << (result.details.empty() ? std::string()
                                       : result.details.front());
    }
}
