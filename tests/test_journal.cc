/**
 * @file
 * Tests for the AdvFS-style metadata journal: group commit, write
 * absorption, recovery replay (in sequence order, skipping torn
 * records), and the end-to-end crash-recovery path of the Journal
 * file system preset.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

} // namespace

TEST(JournalTest, AppendsGoToLogAreaOnFlush)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::AdvFsJournal));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();
    for (int i = 0; i < 10; ++i) {
        auto fd = vfs.open(proc, "/j" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(100, 1);
        rio::wl::tolerate(vfs.write(proc, fd.value(), data));
        rio::wl::tolerate(vfs.close(proc, fd.value()));
    }
    EXPECT_GT(kernel.journal().recordsWritten(), 0u);
    kernel.journal().flushLogBuffer();
    kernel.fsDisk().drain(machine.clock());

    // A record header with the journal magic exists in the log area.
    const auto &geo = kernel.ufs().geometry();
    bool sawMagic = false;
    for (u32 block = geo.logStart;
         block < geo.totalBlocks && !sawMagic; block += 2) {
        u32 magic;
        std::memcpy(&magic,
                    kernel.fsDisk()
                        .peekSector(static_cast<SectorNo>(block) *
                                    sim::kSectorsPerBlock)
                        .data(),
                    4);
        sawMagic = magic == os::Journal::kRecordMagic;
    }
    EXPECT_TRUE(sawMagic);
}

TEST(JournalTest, AbsorptionCoalescesSameBlock)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::AdvFsJournal));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();
    const u64 before = kernel.journal().recordsWritten();
    // Many writes to the same file touch the same inode block over
    // and over; absorption must keep the record count far below the
    // update count.
    auto fd = vfs.open(proc, "/same", os::OpenFlags::writeOnly());
    std::vector<u8> chunk(512, 2);
    for (int i = 0; i < 50; ++i)
        rio::wl::tolerate(vfs.write(proc, fd.value(), chunk));
    rio::wl::tolerate(vfs.close(proc, fd.value()));
    const u64 records = kernel.journal().recordsWritten() - before;
    EXPECT_LT(records, 25u);
}

TEST(JournalTest, ReplayRestoresLoggedMetadataAfterCrash)
{
    sim::Machine machine(machineConfig());
    auto kernel = std::make_unique<os::Kernel>(
        machine, os::systemPreset(os::SystemPreset::AdvFsJournal));
    kernel->boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel->vfs();
    rio::wl::tolerate(vfs.mkdir("/dir"));
    for (int i = 0; i < 20; ++i) {
        auto fd = vfs.open(proc, "/dir/f" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(3000, static_cast<u8>(i));
        rio::wl::tolerate(vfs.write(proc, fd.value(), data));
        rio::wl::tolerate(vfs.close(proc, fd.value()));
    }
    // Push the journal and let the queued log writes land — but the
    // in-place metadata stays delayed (that's the point).
    kernel->journal().flushLogBuffer();
    kernel->fsDisk().drain(machine.clock());
    // Data pages must be on disk for full recovery of contents.
    kernel->ubc().flushAll(true);

    try {
        machine.crash(sim::CrashCause::KernelPanic, "journal test");
    } catch (const sim::CrashException &) {
    }
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    os::Kernel rebooted(machine,
                        os::systemPreset(os::SystemPreset::AdvFsJournal));
    rebooted.boot(nullptr, false);
    EXPECT_GT(rebooted.journalReplayed(), 0u);

    // The files exist with their metadata, courtesy of the log.
    int present = 0;
    for (int i = 0; i < 20; ++i) {
        if (rebooted.ufs()
                .namei("/dir/f" + std::to_string(i))
                .ok()) {
            ++present;
        }
    }
    EXPECT_EQ(present, 20);
}

TEST(JournalTest, TornRecordIsSkippedOnReplay)
{
    sim::Machine machine(machineConfig());
    auto kernel = std::make_unique<os::Kernel>(
        machine, os::systemPreset(os::SystemPreset::AdvFsJournal));
    kernel->boot(nullptr, true);
    os::Process proc(1);
    auto fd = kernel->vfs().open(proc, "/x",
                                 os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 3);
    rio::wl::tolerate(kernel->vfs().write(proc, fd.value(), data));
    rio::wl::tolerate(kernel->vfs().close(proc, fd.value()));
    kernel->journal().flushLogBuffer();
    kernel->fsDisk().drain(machine.clock());

    // Corrupt the image half of the first record (torn write).
    const auto &geo = kernel->ufs().geometry();
    auto torn = kernel->fsDisk().hostSector(
        static_cast<SectorNo>(geo.logStart + 1) *
        sim::kSectorsPerBlock);
    torn[0] ^= 0xff;

    sim::SimClock clock;
    const u64 applied =
        os::Journal::replay(kernel->fsDisk(), clock);
    // Replay still works, minus the torn record.
    EXPECT_GE(applied, 0u);
    u32 magic;
    std::memcpy(&magic,
                kernel->fsDisk()
                    .peekSector(static_cast<SectorNo>(geo.logStart) *
                                sim::kSectorsPerBlock)
                    .data(),
                4);
    EXPECT_EQ(magic, os::Journal::kRecordMagic);
}

TEST(JournalTest, ReplayOnCleanDiskIsHarmless)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::UfsDefault));
    kernel.boot(nullptr, true);
    kernel.shutdown();
    sim::SimClock clock;
    EXPECT_EQ(os::Journal::replay(machine.disk(), clock), 0u);
}
