/**
 * @file
 * Tests for the ext3-grade journal engine: compound transactions and
 * group commit, the three data modes surviving crash + replay,
 * checksummed commit records rejecting torn commits (and the
 * checksum-off arm provably applying garbage), replay idempotence
 * and re-entrancy (crash during replay / checkpoint, double crash),
 * the postcrash journal damage classes, and the PR 6 rule that the
 * new knobs at defaults leave the legacy engine byte-identical.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "fault/postcrash.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "support/bytes.hh"
#include "support/checksum.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

/** Host-side copy of one fs block off the platter. */
std::vector<u8>
readBlock(sim::Disk &disk, u64 blockNo)
{
    std::vector<u8> out(os::Ufs::kBlockSize);
    for (u64 s = 0; s < sim::kSectorsPerBlock; ++s) {
        const auto sector =
            disk.peekSector(blockNo * sim::kSectorsPerBlock + s);
        std::memcpy(out.data() + s * sim::kSectorSize, sector.data(),
                    sim::kSectorSize);
    }
    return out;
}

/** Checksum of the whole platter, for byte-identity assertions. */
u64
platterFingerprint(sim::Disk &disk)
{
    u64 sum = 0;
    for (SectorNo s = 0; s < disk.numSectors(); ++s) {
        sum = sum * 1099511628211ull +
              support::checksum32(disk.peekSector(s));
    }
    return sum;
}

/** One committed transaction found by a host-side log walk. */
struct TxRef
{
    u32 slot = 0;
    u32 count = 0;
    u64 seq = 0;
    std::vector<u32> homes;
};

/** Walk the committed chain the way replay does (host side). */
std::vector<TxRef>
walkLog(sim::Disk &disk, u32 logStart, u32 logBlocks)
{
    using J = os::Journal;
    std::vector<TxRef> txs;
    const auto jsb = readBlock(disk, logStart);
    if (support::loadLE<u32>(jsb, 0) != J::kJsbMagic)
        return txs;
    u64 expect = support::loadLE<u64>(jsb, J::kJsbHeadSeq);
    u32 slot = support::loadLE<u32>(jsb, J::kJsbHeadSlot);
    const u32 dataSlots =
        support::loadLE<u32>(jsb, J::kJsbDataSlots);
    if (dataSlots != logBlocks - 1)
        return txs;
    u32 walked = 0;
    while (walked + 2 <= dataSlots) {
        const auto desc =
            readBlock(disk, static_cast<u64>(logStart) + 1 + slot);
        if (support::loadLE<u32>(desc, 0) != J::kDescMagic ||
            support::loadLE<u64>(desc, J::kDescSeq) != expect)
            break;
        const u32 count = support::loadLE<u32>(desc, J::kDescCount);
        if (count == 0 || walked + count + 2 > dataSlots)
            break;
        const auto cmt = readBlock(
            disk, static_cast<u64>(logStart) + 1 +
                      (slot + 1 + count) % dataSlots);
        if (support::loadLE<u32>(cmt, 0) != J::kCommitMagic ||
            support::loadLE<u64>(cmt, J::kCmtSeq) != expect)
            break;
        TxRef tx{slot, count, expect, {}};
        for (u32 e = 0; e < count; ++e) {
            tx.homes.push_back(support::loadLE<u32>(
                desc, J::kDescEntries + 8ull * e));
        }
        txs.push_back(std::move(tx));
        slot = (slot + count + 2) % dataSlots;
        ++expect;
        walked += count + 2;
    }
    return txs;
}

/** Boot an ext3 kernel, write and sync a small file set, crash.
 *  Committed transactions are on the platter; their home copies are
 *  not (no checkpoint ran). Deterministic in the config. */
std::unique_ptr<sim::Machine>
makeCrashedImage(os::KernelConfig config, int files = 8)
{
    auto machine = std::make_unique<sim::Machine>(machineConfig());
    auto kernel = std::make_unique<os::Kernel>(*machine, config);
    kernel->boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel->vfs();
    wl::tolerate(vfs.mkdir("/d"));
    for (int i = 0; i < files; ++i) {
        auto fd = vfs.open(proc, "/d/f" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(5000, static_cast<u8>(0x30 + i));
        wl::tolerate(vfs.write(proc, fd.value(), data));
        wl::tolerate(vfs.close(proc, fd.value()));
    }
    vfs.sync(); // Commits the compound transaction (no checkpoint).
    kernel->fsDisk().drain(machine->clock());
    try {
        machine->crash(sim::CrashCause::KernelPanic, "ext3 test");
    } catch (const sim::CrashException &) {
    }
    kernel.reset();
    machine->reset(sim::ResetKind::Warm);
    return machine;
}

int
countFiles(os::Kernel &kernel, int files)
{
    int present = 0;
    for (int i = 0; i < files; ++i) {
        if (kernel.ufs().namei("/d/f" + std::to_string(i)).ok())
            ++present;
    }
    return present;
}

} // namespace

TEST(JournalExt3, CompoundTransactionBatchesManySyscalls)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(
        machine,
        os::systemPreset(os::SystemPreset::JournalWriteback));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();
    const u64 before = kernel.journal().transactionsCommitted();
    // 10 creates + writes + closes touch the same inode, bitmap and
    // directory blocks over and over; absorption folds them into one
    // open compound transaction.
    for (int i = 0; i < 10; ++i) {
        auto fd = vfs.open(proc, "/c" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(200, 7);
        wl::tolerate(vfs.write(proc, fd.value(), data));
        wl::tolerate(vfs.close(proc, fd.value()));
    }
    EXPECT_TRUE(kernel.journal().txOpen());
    EXPECT_GT(kernel.journal().openTxBlocks(), 0u);
    EXPECT_EQ(kernel.journal().transactionsCommitted(), before);

    vfs.sync();
    EXPECT_FALSE(kernel.journal().txOpen());
    EXPECT_EQ(kernel.journal().transactionsCommitted(), before + 1);
    // Far fewer block images than the ~30 syscalls' metadata updates.
    EXPECT_LT(kernel.journal().recordsWritten(), 15u);
}

TEST(JournalExt3, GroupCommitTimerSealsAgedTransaction)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(
        machine,
        os::systemPreset(os::SystemPreset::JournalWriteback));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();
    auto fd = vfs.open(proc, "/t", os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 9);
    wl::tolerate(vfs.write(proc, fd.value(), data));
    wl::tolerate(vfs.close(proc, fd.value()));
    ASSERT_TRUE(kernel.journal().txOpen());

    // Younger than the 5 s commit interval: still open.
    machine.clock().advance(1ull * sim::kNsPerSec);
    wl::tolerate(vfs.stat("/t")); // Any syscall runs the timer.
    EXPECT_TRUE(kernel.journal().txOpen());

    machine.clock().advance(6ull * sim::kNsPerSec);
    wl::tolerate(vfs.stat("/t"));
    EXPECT_FALSE(kernel.journal().txOpen());
    EXPECT_GT(kernel.journal().transactionsCommitted(), 0u);
}

TEST(JournalExt3, AllThreeModesSurviveCrashAndReplay)
{
    const os::SystemPreset presets[] = {
        os::SystemPreset::JournalWriteback,
        os::SystemPreset::JournalOrdered,
        os::SystemPreset::JournalData,
    };
    for (const os::SystemPreset preset : presets) {
        const os::KernelConfig config = os::systemPreset(preset);
        auto machine = makeCrashedImage(config);
        os::Kernel rebooted(*machine, config);
        rebooted.boot(nullptr, false);
        EXPECT_GT(rebooted.journalReplayed(), 0u)
            << os::systemPresetName(preset);
        EXPECT_EQ(countFiles(rebooted, 8), 8)
            << os::systemPresetName(preset);
    }
}

TEST(JournalExt3, DataJournalRestoresFileContentsFromTheLog)
{
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::JournalData);
    auto machine = makeCrashedImage(config, 4);
    os::Kernel rebooted(*machine, config);
    rebooted.boot(nullptr, false);
    os::Process proc(2);
    for (int i = 0; i < 4; ++i) {
        auto fd = rebooted.vfs().open(proc, "/d/f" + std::to_string(i),
                                      os::OpenFlags::readOnly());
        ASSERT_TRUE(fd.ok());
        std::vector<u8> out(5000);
        auto n = rebooted.vfs().read(proc, fd.value(), out);
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(n.value(), 5000u);
        // data=journal: the content rode the log; replay must have
        // written it home byte-exactly.
        EXPECT_EQ(out, std::vector<u8>(5000,
                                       static_cast<u8>(0x30 + i)));
        wl::tolerate(rebooted.vfs().close(proc, fd.value()));
    }
}

TEST(JournalExt3, ChecksumRejectsTornCommitButNoChecksumAppliesIt)
{
    // The same torn-commit scenario under both arms: scramble a
    // committed transaction's payload while its commit record
    // survives. The checksum arm must refuse to let the garbage
    // anywhere near a home block; the weakened arm provably applies
    // it — this pair is the direct proof behind the crashmc arms.
    for (const bool checksum : {true, false}) {
        os::KernelConfig config =
            os::systemPreset(os::SystemPreset::JournalOrdered);
        config.journal.checksumCommit = checksum;
        auto machine = makeCrashedImage(config);
        sim::Disk &disk = machine->disk();
        const auto geoBlock = readBlock(disk, 0);
        const u32 logStart =
            support::loadLE<u32>(geoBlock, os::Ufs::kSbLogStart);
        const u32 logBlocks =
            support::loadLE<u32>(geoBlock, os::Ufs::kSbLogBlocks);
        const auto txs = walkLog(disk, logStart, logBlocks);
        ASSERT_FALSE(txs.empty());

        // Scramble 64 bytes of the last tx's first payload block
        // with a recognizable pattern; earlier (intact) txs may
        // still replay, the torn one must not.
        const TxRef &tx = txs.back();
        const u32 dataSlots = logBlocks - 1;
        const u64 payloadBlock = static_cast<u64>(logStart) + 1 +
                                 (tx.slot + 1) % dataSlots;
        const u32 home = tx.homes.front();
        auto sector =
            disk.hostSector(payloadBlock * sim::kSectorsPerBlock);
        for (int i = 0; i < 64; ++i)
            sector[100 + i] = 0xA5; // riolint:allow(R1) test tears the log.

        sim::SimClock clock;
        os::JournalReplayStats stats;
        os::Journal::replay(disk, clock, {}, nullptr, &stats);
        EXPECT_TRUE(stats.sawExt3);

        const auto homeBytes = readBlock(disk, home);
        bool sawPattern = false;
        for (u64 off = 0; off + 64 <= sim::kSectorSize; ++off) {
            if (homeBytes[off] == 0xA5 && homeBytes[off + 63] == 0xA5 &&
                std::memcmp(homeBytes.data() + off,
                            std::vector<u8>(64, 0xA5).data(),
                            64) == 0) {
                sawPattern = true;
                break;
            }
        }
        if (checksum) {
            EXPECT_GE(stats.rejectedChecksum, 1u);
            EXPECT_FALSE(sawPattern)
                << "checksummed replay leaked torn bytes home";
        } else {
            EXPECT_EQ(stats.rejectedChecksum, 0u);
            EXPECT_TRUE(sawPattern)
                << "weakened arm was expected to apply the garbage";
        }
    }
}

TEST(JournalExt3, ReplayIsIdempotent)
{
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::JournalOrdered);
    auto machine = makeCrashedImage(config);
    sim::Disk &disk = machine->disk();

    sim::SimClock clock;
    os::JournalReplayStats first;
    os::Journal::replay(disk, clock, {}, nullptr, &first);
    EXPECT_GT(first.transactions, 0u);
    const u64 afterFirst = platterFingerprint(disk);

    os::JournalReplayStats second;
    os::Journal::replay(disk, clock, {}, nullptr, &second);
    // The advanced head leaves nothing to re-apply, and the platter
    // is byte-identical: recovering twice is the same as once.
    EXPECT_EQ(second.transactions, 0u);
    EXPECT_EQ(platterFingerprint(disk), afterFirst);
}

namespace
{

/** Throws out of replay at the k-th phase event (modeled crash). */
class AbortProbe final : public os::JournalReplayProbe
{
  public:
    struct Abort
    {
    };
    explicit AbortProbe(u64 at) : at_(at) {}
    void
    onReplayPhase(Phase, u64) override
    {
        if (count_++ == at_)
            throw Abort{};
    }
    u64 seen() const { return count_; }

  private:
    u64 at_;
    u64 count_ = 0;
};

} // namespace

TEST(JournalExt3, ReplayIsReentrantAtEveryPhaseBoundary)
{
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::JournalOrdered);

    // Reference: one uninterrupted recovery of the crashed image.
    u64 want = 0;
    u64 phases = 0;
    {
        auto machine = makeCrashedImage(config);
        AbortProbe counter(~0ull); // Never fires; counts phases.
        sim::SimClock clock;
        os::Journal::replay(machine->disk(), clock, {}, &counter,
                            nullptr);
        phases = counter.seen();
        want = platterFingerprint(machine->disk());
    }
    ASSERT_GT(phases, 2u);

    // Crash the replay at every phase boundary (losing whatever was
    // still queued), recover again, and require the byte-identical
    // end state — including a double crash at adjacent boundaries.
    for (u64 k = 0; k < phases; ++k) {
        auto machine = makeCrashedImage(config);
        sim::Disk &disk = machine->disk();
        sim::SimClock clock;
        AbortProbe abort(k);
        try {
            os::Journal::replay(disk, clock, {}, &abort, nullptr);
        } catch (const AbortProbe::Abort &) {
            disk.crashDropQueue(clock.now());
        }
        if (k + 1 < phases) { // Second crash, one boundary later.
            AbortProbe again(k + 1 - (k + 1 > 0 ? 1 : 0));
            try {
                os::Journal::replay(disk, clock, {}, &again, nullptr);
            } catch (const AbortProbe::Abort &) {
                disk.crashDropQueue(clock.now());
            }
        }
        os::Journal::replay(disk, clock, {}, nullptr, nullptr);
        EXPECT_EQ(platterFingerprint(disk), want) << "k=" << k;
    }
}

namespace
{

/** Crashes the machine at the k-th checkpoint step. */
class CheckpointCrasher final : public os::JournalObserver
{
  public:
    CheckpointCrasher(sim::Machine &machine, u64 at)
        : machine_(machine), at_(at)
    {
    }
    void
    onJournalStep(Step step, u64) override
    {
        if (step == Step::TxCommit)
            return;
        if (count_++ == at_) {
            machine_.crash(sim::CrashCause::KernelPanic,
                           "ext3 test: crash mid-checkpoint");
        }
    }
    u64 seen() const { return count_; }

  private:
    sim::Machine &machine_;
    u64 at_;
    u64 count_ = 0;
};

} // namespace

TEST(JournalExt3, CrashDuringCheckpointRecoversAtEveryStep)
{
    // Phase sweep over every checkpoint step (home-copy writes and
    // the head advance): fsynced files must survive a crash at any
    // of them, plus a second crash during the subsequent replay.
    os::KernelConfig config =
        os::systemPreset(os::SystemPreset::JournalWriteback);
    config.journal.checkpointEveryCommits = 1;
    constexpr int kFiles = 4;

    const auto run = [&](u64 crashAt, u64 *stepsSeen) -> bool {
        sim::Machine machine(machineConfig());
        auto kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(nullptr, true);
        CheckpointCrasher crasher(machine, crashAt);
        kernel->journal().setObserver(&crasher);
        os::Process proc(1);
        auto &vfs = kernel->vfs();
        int fsynced = 0;
        bool crashed = false;
        try {
            wl::tolerate(vfs.mkdir("/d"));
            for (int i = 0; i < kFiles; ++i) {
                auto fd = vfs.open(proc, "/d/f" + std::to_string(i),
                                   os::OpenFlags::writeOnly());
                std::vector<u8> data(3000, static_cast<u8>(i));
                wl::tolerate(vfs.write(proc, fd.value(), data));
                wl::tolerate(vfs.fsync(proc, fd.value()));
                wl::tolerate(vfs.close(proc, fd.value()));
                ++fsynced;
            }
        } catch (const sim::CrashException &) {
            crashed = true;
        }
        if (stepsSeen != nullptr)
            *stepsSeen = crasher.seen();
        if (!crashed)
            return false;
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);

        // Double crash: interrupt the first recovery attempt.
        {
            sim::SimClock clock;
            AbortProbe abort(1);
            try {
                os::Journal::replay(machine.disk(), clock, {},
                                    &abort, nullptr);
            } catch (const AbortProbe::Abort &) {
                machine.disk().crashDropQueue(clock.now());
            }
        }

        os::Kernel rebooted(machine, config);
        rebooted.boot(nullptr, false);
        EXPECT_EQ(countFiles(rebooted, fsynced), fsynced)
            << "crashAt=" << crashAt;
        return true;
    };

    u64 steps = 0;
    run(~0ull, &steps); // Dry run: count checkpoint steps.
    ASSERT_GT(steps, 2u);
    int swept = 0;
    for (u64 k = 0; k < steps; ++k) {
        if (run(k, nullptr))
            ++swept;
    }
    EXPECT_GT(swept, 0);
}

TEST(JournalExt3, PostcrashJournalDamageIsContainedByReplay)
{
    // Stale wrapped sequence numbers and smashed descriptors: the
    // corruptor plants them, replay must stop at the damage instead
    // of applying a transaction from another log generation, and the
    // volume still boots.
    for (const int kind : {0, 1}) {
        const os::KernelConfig config =
            os::systemPreset(os::SystemPreset::JournalOrdered);
        auto machine = makeCrashedImage(config);
        fault::PostCrashConfig damage;
        damage.flipRegistryBits = false;
        damage.smashMagics = false;
        damage.crossLinkClaims = false;
        damage.crossLinkPages = false;
        damage.smashPageBytes = false;
        damage.smashShadows = false;
        damage.zeroTail = false;
        damage.nvBitDecay = false;
        damage.nvTornLines = false;
        damage.nvSmashMirror = false;
        damage.jrnTearCommit = false;
        damage.jrnStaleSeq = kind == 0;
        damage.jrnSmashDescriptor = kind == 1;
        fault::PostCrashCorruptor corruptor(
            *machine, support::Rng(42), damage);
        const auto stats = corruptor.corrupt();
        if (kind == 0)
            EXPECT_GT(stats.jrnStaleSeqs, 0u);
        else
            EXPECT_GT(stats.jrnDescriptorsSmashed, 0u);

        os::Kernel rebooted(*machine, config);
        rebooted.boot(nullptr, false); // Must not trip kernel checks.
        EXPECT_TRUE(rebooted.ufs().mounted());
    }
}

TEST(JournalExt3, PostcrashJournalClassesAreSilentOnLegacyImages)
{
    // The legacy log has no ext3 journal superblock; the journal
    // damage classes must draw nothing from the Rng so every
    // historical campaign trial stays bit-reproducible.
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::AdvFsJournal);
    auto machine = makeCrashedImage(config);
    fault::PostCrashConfig damage;
    damage.flipRegistryBits = false;
    damage.smashMagics = false;
    damage.crossLinkClaims = false;
    damage.crossLinkPages = false;
    damage.smashPageBytes = false;
    damage.smashShadows = false;
    damage.zeroTail = false;
    damage.nvBitDecay = false;
    damage.nvTornLines = false;
    damage.nvSmashMirror = false;
    fault::PostCrashCorruptor corruptor(*machine, support::Rng(42),
                                        damage);
    const auto stats = corruptor.corrupt();
    EXPECT_EQ(stats.jrnCommitsTorn, 0u);
    EXPECT_EQ(stats.jrnStaleSeqs, 0u);
    EXPECT_EQ(stats.jrnDescriptorsSmashed, 0u);
    EXPECT_EQ(stats.ops, 0u);
}

TEST(JournalExt3, LegacyEngineIgnoresTheNewKnobs)
{
    // PR 6 rule: with mode=Legacy (every historical preset), the
    // ext3-only knobs must not perturb a single byte or nanosecond,
    // so Table 1 / Table 2 legacy rows stay byte-identical.
    const auto run = [](const os::KernelConfig &config) {
        sim::Machine machine(machineConfig());
        os::Kernel kernel(machine, config);
        kernel.boot(nullptr, true);
        os::Process proc(1);
        auto &vfs = kernel.vfs();
        wl::tolerate(vfs.mkdir("/w"));
        for (int i = 0; i < 12; ++i) {
            auto fd = vfs.open(proc, "/w/f" + std::to_string(i),
                               os::OpenFlags::writeOnly());
            std::vector<u8> data(4000, static_cast<u8>(i * 3));
            wl::tolerate(vfs.write(proc, fd.value(), data));
            wl::tolerate(vfs.fsync(proc, fd.value()));
            wl::tolerate(vfs.close(proc, fd.value()));
        }
        kernel.shutdown();
        return std::make_pair(machine.clock().now(),
                              platterFingerprint(machine.disk()));
    };

    os::KernelConfig defaults =
        os::systemPreset(os::SystemPreset::AdvFsJournal);
    os::KernelConfig twisted = defaults;
    twisted.journal.commitIntervalNs = 1;
    twisted.journal.maxTxBlocks = 3;
    twisted.journal.checksumCommit = false;
    twisted.journal.checkpointEveryCommits = 1;

    EXPECT_EQ(run(defaults), run(twisted));
}
