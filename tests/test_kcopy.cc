/**
 * @file
 * Tests for the kernel copy routines themselves (the fault hooks are
 * covered in test_fault.cc): copyin/copyout fidelity, kernel-to-
 * kernel copies, zeroing, and time charging.
 */

#include <gtest/gtest.h>

#include "os/kcopy.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

class KCopyTest : public ::testing::Test
{
  protected:
    KCopyTest()
        : machine_(config()), procs_(machine_, support::Rng(1)),
          kcopy_(machine_, procs_)
    {
        machine_.pageTable().initIdentity();
        heapBase_ =
            machine_.mem().region(sim::RegionKind::KernelHeap).base;
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig c;
        c.physMemBytes = 8ull << 20;
        c.kernelTextBytes = 1ull << 20;
        c.kernelHeapBytes = 2ull << 20;
        c.bufPoolBytes = 256ull << 10;
        c.diskBytes = 16ull << 20;
        c.swapBytes = 8ull << 20;
        return c;
    }

    sim::Machine machine_;
    os::KProcTable procs_;
    os::KCopy kcopy_;
    Addr heapBase_ = 0;
};

} // namespace

TEST_F(KCopyTest, CopyInOutRoundTrip)
{
    std::vector<u8> in(5000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<u8>(i * 17);
    kcopy_.copyIn(heapBase_ + 128, in);
    std::vector<u8> out(5000, 0);
    kcopy_.copyOut(out, heapBase_ + 128);
    EXPECT_EQ(in, out);
    EXPECT_EQ(kcopy_.calls(), 2u);
}

TEST_F(KCopyTest, KernelToKernelCopy)
{
    std::vector<u8> in(3000, 0x21);
    kcopy_.copyIn(heapBase_, in);
    kcopy_.copy(heapBase_ + 100000, heapBase_, 3000);
    std::vector<u8> out(3000);
    kcopy_.copyOut(out, heapBase_ + 100000);
    EXPECT_EQ(out, in);
}

TEST_F(KCopyTest, ZeroClearsRange)
{
    std::vector<u8> in(1024, 0xff);
    kcopy_.copyIn(heapBase_, in);
    kcopy_.zero(heapBase_ + 100, 500);
    std::vector<u8> out(1024);
    kcopy_.copyOut(out, heapBase_);
    EXPECT_EQ(out[99], 0xff);
    EXPECT_EQ(out[100], 0);
    EXPECT_EQ(out[599], 0);
    EXPECT_EQ(out[600], 0xff);
}

TEST_F(KCopyTest, CopiesChargeTimeProportionally)
{
    std::vector<u8> small(1024), large(64 * 1024);
    const SimNs t0 = machine_.clock().now();
    kcopy_.copyIn(heapBase_, small);
    const SimNs smallCost = machine_.clock().now() - t0;
    const SimNs t1 = machine_.clock().now();
    kcopy_.copyIn(heapBase_ + 131072, large);
    const SimNs largeCost = machine_.clock().now() - t1;
    EXPECT_GT(largeCost, smallCost * 20);
}

TEST_F(KCopyTest, CrossPageCopiesAreFaithful)
{
    // Span several pages with an unaligned start.
    std::vector<u8> in(3 * sim::kPageSize);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<u8>((i * 31) ^ (i >> 7));
    const Addr dst = heapBase_ + sim::kPageSize - 333;
    kcopy_.copyIn(dst, in);
    std::vector<u8> out(in.size());
    kcopy_.copyOut(out, dst);
    EXPECT_EQ(in, out);
}

TEST_F(KCopyTest, CopyInToInvalidAddressMachineChecks)
{
    std::vector<u8> in(64, 1);
    EXPECT_THROW(kcopy_.copyIn(machine_.mem().size() + 4096, in),
                 sim::CrashException);
}
