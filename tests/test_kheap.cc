/**
 * @file
 * Unit tests for the kernel heap allocator, including its role as a
 * causal fault-injection substrate (consistency panics on corrupted
 * headers, premature-free reuse).
 */

#include <gtest/gtest.h>

#include "os/kheap.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

class KHeapTest : public ::testing::Test
{
  protected:
    KHeapTest()
        : machine_(config()), procs_(machine_, support::Rng(1)),
          heap_(machine_, procs_)
    {
        machine_.pageTable().initIdentity();
        heap_.init();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig c;
        c.physMemBytes = 8ull << 20;
        c.kernelTextBytes = 1ull << 20;
        c.kernelHeapBytes = 2ull << 20;
        c.bufPoolBytes = 512ull << 10;
        c.diskBytes = 16ull << 20;
        c.swapBytes = 8ull << 20;
        return c;
    }

    sim::Machine machine_;
    os::KProcTable procs_;
    os::KernelHeap heap_;
};

} // namespace

TEST_F(KHeapTest, AllocZeroesPayload)
{
    const Addr p = heap_.alloc(256);
    ASSERT_NE(p, 0u);
    for (u64 i = 0; i < 256; i += 8)
        EXPECT_EQ(machine_.bus().load64(p + i), 0u);
}

TEST_F(KHeapTest, DistinctAllocationsDoNotOverlap)
{
    const Addr a = heap_.alloc(100);
    const Addr b = heap_.alloc(100);
    EXPECT_GE(b, a + 100);
    machine_.bus().store64(a, 0x1111);
    machine_.bus().store64(b, 0x2222);
    EXPECT_EQ(machine_.bus().load64(a), 0x1111u);
}

TEST_F(KHeapTest, FreeAllowsReuse)
{
    const Addr a = heap_.alloc(64);
    heap_.free(a);
    const Addr b = heap_.alloc(64);
    EXPECT_EQ(a, b); // First fit reuses the hole.
}

TEST_F(KHeapTest, CoalescingMergesNeighbours)
{
    const Addr a = heap_.alloc(100);
    const Addr b = heap_.alloc(100);
    heap_.alloc(100); // Hold the tail so the arena is fragmented.
    heap_.free(a);
    heap_.free(b);
    // A request bigger than one freed block but smaller than both
    // coalesced must fit at 'a'.
    const Addr c = heap_.alloc(180);
    EXPECT_EQ(c, a);
}

TEST_F(KHeapTest, AccountsAllocatedBytes)
{
    const u64 before = heap_.allocatedBytes();
    const Addr a = heap_.alloc(1000);
    EXPECT_GE(heap_.allocatedBytes(), before + 1000);
    heap_.free(a);
    EXPECT_EQ(heap_.allocatedBytes(), before);
}

TEST_F(KHeapTest, ExhaustionPanics)
{
    EXPECT_THROW(
        {
            for (;;)
                heap_.alloc(64 << 10);
        },
        sim::CrashException);
}

TEST_F(KHeapTest, OversizeRequestPanics)
{
    EXPECT_THROW(heap_.alloc(1ull << 40), sim::CrashException);
}

TEST_F(KHeapTest, DoubleFreePanics)
{
    const Addr a = heap_.alloc(64);
    heap_.free(a);
    EXPECT_THROW(heap_.free(a), sim::CrashException);
}

TEST_F(KHeapTest, FreeOfWildPointerPanics)
{
    EXPECT_THROW(heap_.free(0x1234), sim::CrashException);
}

TEST_F(KHeapTest, CorruptedHeaderMagicIsCaught)
{
    const Addr a = heap_.alloc(64);
    (void)a;
    heap_.alloc(64);
    // Flip a bit in the second block's header magic via raw memory
    // (as a heap bit-flip fault would).
    const Addr header = heap_.alloc(64) - os::KernelHeap::kHeaderSize;
    machine_.mem().raw()[header] ^= 0x10;
    EXPECT_THROW(heap_.checkArena(), sim::CrashException);
}

TEST_F(KHeapTest, ArenaWalkPassesWhenHealthy)
{
    for (int i = 0; i < 20; ++i)
        heap_.alloc(32 + i * 8);
    EXPECT_NO_THROW(heap_.checkArena());
}

TEST_F(KHeapTest, PrematureFreeEventuallyReusesLiveBlock)
{
    support::Rng rng(99);
    heap_.armPrematureFree(rng);
    // Allocate many long-lived blocks; at some point the allocator
    // "frees" one behind our back, and a later allocation reuses it.
    std::vector<Addr> live;
    bool overlap = false;
    for (int i = 0; i < 400 && !overlap; ++i) {
        machine_.clock().advance(300'000'000); // Let the timer fire.
        const Addr p = heap_.alloc(64);
        for (const Addr q : live)
            overlap |= p == q;
        live.push_back(p);
    }
    EXPECT_TRUE(overlap);
}

TEST_F(KHeapTest, CorruptRecentAllocationScribblesAField)
{
    support::Rng rng(7);
    const Addr p = heap_.alloc(64);
    // The most recent allocation is in the ring; corrupting writes a
    // garbage field somewhere within it.
    bool changed = false;
    for (int attempt = 0; attempt < 8 && !changed; ++attempt) {
        ASSERT_TRUE(heap_.corruptRecentAllocation(rng));
        for (u64 off = 0; off < 64; off += 8)
            changed |= machine_.bus().load64(p + off) != 0;
    }
    EXPECT_TRUE(changed);
}
