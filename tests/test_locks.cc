/**
 * @file
 * Unit tests for the kernel lock table and its synchronization-fault
 * behaviour (missed releases deadlock; missed acquires race).
 */

#include <gtest/gtest.h>

#include "os/locks.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

class LocksTest : public ::testing::Test
{
  protected:
    LocksTest()
        : machine_(config()), procs_(machine_, support::Rng(1)),
          locks_(machine_, procs_)
    {
        machine_.pageTable().initIdentity();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig c;
        c.physMemBytes = 8ull << 20;
        c.kernelTextBytes = 1ull << 20;
        c.kernelHeapBytes = 2ull << 20;
        c.bufPoolBytes = 256ull << 10;
        c.diskBytes = 16ull << 20;
        c.swapBytes = 8ull << 20;
        return c;
    }

    sim::Machine machine_;
    os::KProcTable procs_;
    os::LockTable locks_;
};

} // namespace

TEST_F(LocksTest, AcquireReleaseCycle)
{
    const os::LockId lock = locks_.add("test");
    locks_.acquire(lock);
    locks_.release(lock);
    locks_.acquire(lock);
    locks_.release(lock);
    EXPECT_EQ(locks_.acquires(), 2u);
}

TEST_F(LocksTest, DoubleAcquireDeadlocks)
{
    const os::LockId lock = locks_.add("test");
    locks_.acquire(lock);
    EXPECT_THROW(locks_.acquire(lock), sim::CrashException);
}

TEST_F(LocksTest, GuardReleasesOnScopeExit)
{
    const os::LockId lock = locks_.add("test");
    {
        os::LockTable::Guard guard(locks_, lock);
    }
    EXPECT_NO_THROW(locks_.acquire(lock));
}

TEST_F(LocksTest, GuardReleasesQuietlyDuringUnwind)
{
    const os::LockId lock = locks_.add("test");
    try {
        os::LockTable::Guard guard(locks_, lock);
        throw std::runtime_error("unwind");
    } catch (const std::runtime_error &) {
    }
    EXPECT_NO_THROW(locks_.acquire(lock));
}

TEST_F(LocksTest, SyncFaultEventuallyDeadlocksOrRaces)
{
    const auto &heap = machine_.mem().region(sim::RegionKind::KernelHeap);
    const os::LockId lock = locks_.add("guarded", heap.base, 4096);
    support::Rng rng(11);
    locks_.armSyncFault(rng);

    bool crashed = false;
    u64 races = 0;
    for (int i = 0; i < 20000 && !crashed; ++i) {
        try {
            locks_.acquire(lock);
            locks_.release(lock);
        } catch (const sim::CrashException &e) {
            EXPECT_EQ(e.cause(), sim::CrashCause::Deadlock);
            crashed = true;
        }
        races = locks_.racesInjected();
    }
    // A missed release must eventually deadlock; races may also have
    // been injected along the way.
    EXPECT_TRUE(crashed);
    EXPECT_GE(races, 0u);
}

TEST_F(LocksTest, RaceCanScribbleGuardedBytes)
{
    const auto &heap = machine_.mem().region(sim::RegionKind::KernelHeap);
    const os::LockId lock = locks_.add("guarded", heap.base, 4096);
    support::Rng rng(13);
    locks_.armSyncFault(rng);

    bool corrupted = false;
    for (int i = 0; i < 200000 && !corrupted; ++i) {
        try {
            locks_.acquire(lock);
            locks_.release(lock);
        } catch (const sim::CrashException &) {
            // "Reboot": clear the stuck lock and keep hammering.
            locks_.releaseQuiet(lock);
        }
        if (locks_.racesInjected() > 0) {
            for (u64 off = 0; off < 4096 && !corrupted; ++off)
                corrupted =
                    machine_.mem().raw()[heap.base + off] != 0;
        }
    }
    // Across enough missed acquires, the race model must scribble
    // into the guarded range at least once.
    EXPECT_TRUE(corrupted);
}
