/**
 * @file
 * Unit tests for the kernel lock table and its synchronization-fault
 * behaviour (missed releases deadlock; missed acquires race).
 */

#include <gtest/gtest.h>

#include "os/locks.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

class LocksTest : public ::testing::Test
{
  protected:
    LocksTest()
        : machine_(config()), procs_(machine_, support::Rng(1)),
          locks_(machine_, procs_)
    {
        machine_.pageTable().initIdentity();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig c;
        c.physMemBytes = 8ull << 20;
        c.kernelTextBytes = 1ull << 20;
        c.kernelHeapBytes = 2ull << 20;
        c.bufPoolBytes = 256ull << 10;
        c.diskBytes = 16ull << 20;
        c.swapBytes = 8ull << 20;
        return c;
    }

    sim::Machine machine_;
    os::KProcTable procs_;
    os::LockTable locks_;
};

} // namespace

TEST_F(LocksTest, AcquireReleaseCycle)
{
    const os::LockId lock = locks_.add("test");
    locks_.acquire(lock);
    locks_.release(lock);
    locks_.acquire(lock);
    locks_.release(lock);
    EXPECT_EQ(locks_.acquires(), 2u);
}

TEST_F(LocksTest, DoubleAcquireDeadlocks)
{
    const os::LockId lock = locks_.add("test");
    locks_.acquire(lock);
    EXPECT_THROW(locks_.acquire(lock), sim::CrashException);
}

TEST_F(LocksTest, GuardReleasesOnScopeExit)
{
    const os::LockId lock = locks_.add("test");
    {
        os::LockTable::Guard guard(locks_, lock);
    }
    EXPECT_NO_THROW(locks_.acquire(lock));
}

TEST_F(LocksTest, GuardReleasesQuietlyDuringUnwind)
{
    const os::LockId lock = locks_.add("test");
    try {
        os::LockTable::Guard guard(locks_, lock);
        throw std::runtime_error("unwind");
    } catch (const std::runtime_error &) {
    }
    EXPECT_NO_THROW(locks_.acquire(lock));
}

TEST_F(LocksTest, SyncFaultEventuallyDeadlocksOrRaces)
{
    const auto &heap = machine_.mem().region(sim::RegionKind::KernelHeap);
    const os::LockId lock = locks_.add("guarded", os::LockRank{}, heap.base, 4096);
    support::Rng rng(11);
    locks_.armSyncFault(rng);

    bool crashed = false;
    u64 races = 0;
    for (int i = 0; i < 20000 && !crashed; ++i) {
        try {
            locks_.acquire(lock);
            locks_.release(lock);
        } catch (const sim::CrashException &e) {
            EXPECT_EQ(e.cause(), sim::CrashCause::Deadlock);
            crashed = true;
        }
        races = locks_.racesInjected();
    }
    // A missed release must eventually deadlock; races may also have
    // been injected along the way.
    EXPECT_TRUE(crashed);
    EXPECT_GE(races, 0u);
}

TEST_F(LocksTest, RaceCanScribbleGuardedBytes)
{
    const auto &heap = machine_.mem().region(sim::RegionKind::KernelHeap);
    const os::LockId lock = locks_.add("guarded", os::LockRank{}, heap.base, 4096);
    support::Rng rng(13);
    locks_.armSyncFault(rng);

    bool corrupted = false;
    for (int i = 0; i < 200000 && !corrupted; ++i) {
        try {
            locks_.acquire(lock);
            locks_.release(lock);
        } catch (const sim::CrashException &) {
            // "Reboot": clear the stuck lock and keep hammering.
            locks_.releaseQuiet(lock);
        }
        if (locks_.racesInjected() > 0) {
            for (u64 off = 0; off < 4096 && !corrupted; ++off)
                corrupted =
                    machine_.mem().raw()[heap.base + off] != 0;
        }
    }
    // Across enough missed acquires, the race model must scribble
    // into the guarded range at least once.
    EXPECT_TRUE(corrupted);
}

TEST_F(LocksTest, LockdepAcceptsIncreasingRanks)
{
    const os::LockId fs = locks_.add("fs", os::LockRank{10});
    const os::LockId ubc = locks_.add("ubc", os::LockRank{20});
    const os::LockId buf = locks_.add("buf", os::LockRank{30});
    locks_.acquire(fs);
    locks_.acquire(ubc);
    locks_.acquire(buf);
    EXPECT_EQ(locks_.heldDepth(), 3u);
    locks_.release(buf);
    locks_.release(ubc);
    locks_.release(fs);
    EXPECT_EQ(locks_.rankViolations(), 0u);
    EXPECT_EQ(locks_.lockdepEvents(), 6u);
    EXPECT_EQ(locks_.heldDepth(), 0u);
}

TEST_F(LocksTest, LockdepRecordsInvertedRankOrder)
{
    const os::LockId fs = locks_.add("fs", os::LockRank{10});
    const os::LockId buf = locks_.add("buf", os::LockRank{30});
    locks_.acquire(buf);
    locks_.acquire(fs); // Rank 10 under rank 30: inverted.
    EXPECT_EQ(locks_.rankViolations(), 1u);
    ASSERT_EQ(locks_.rankViolationLog().size(), 1u);
    EXPECT_NE(locks_.rankViolationLog()[0].find("fs"),
              std::string::npos);
    EXPECT_NE(locks_.rankViolationLog()[0].find("buf"),
              std::string::npos);
    locks_.release(fs);
    locks_.release(buf);
}

TEST_F(LocksTest, LockdepRejectsEqualRanks)
{
    // Two locks at the same rank cannot nest in either order — that
    // is exactly the symmetric nesting R7 calls a cycle.
    const os::LockId a = locks_.add("a", os::LockRank{20});
    const os::LockId b = locks_.add("b", os::LockRank{20});
    locks_.acquire(a);
    locks_.acquire(b);
    EXPECT_EQ(locks_.rankViolations(), 1u);
    locks_.release(b);
    locks_.release(a);
}

TEST_F(LocksTest, LockdepExemptsUnrankedLocks)
{
    const os::LockId ranked = locks_.add("ranked", os::LockRank{30});
    const os::LockId plain = locks_.add("plain");
    locks_.acquire(ranked);
    locks_.acquire(plain); // Unranked incoming: exempt.
    locks_.release(plain);
    locks_.release(ranked);
    locks_.acquire(plain);
    locks_.acquire(ranked); // Unranked held: exempt.
    locks_.release(ranked);
    locks_.release(plain);
    EXPECT_EQ(locks_.rankViolations(), 0u);
    EXPECT_EQ(locks_.lockdepEvents(), 8u);
}

TEST_F(LocksTest, LockdepOffDoesNoBookkeeping)
{
    locks_.setLockdep(false);
    const os::LockId buf = locks_.add("buf", os::LockRank{30});
    const os::LockId fs = locks_.add("fs", os::LockRank{10});
    locks_.acquire(buf);
    locks_.acquire(fs); // Would be a violation with lockdep on.
    locks_.release(fs);
    locks_.release(buf);
    EXPECT_EQ(locks_.lockdepEvents(), 0u);
    EXPECT_EQ(locks_.rankViolations(), 0u);
    EXPECT_EQ(locks_.heldDepth(), 0u);
}

TEST_F(LocksTest, GuardUnwindCrashTakesQuietReleasePath)
{
    // A crash injected inside release() must unwind through the
    // outer Guard's releaseQuiet() path without terminating the
    // host, and lockdep must not count the quiet release as an
    // event.
    const os::LockId outer = locks_.add("outer", os::LockRank{10});
    const os::LockId inner = locks_.add("inner", os::LockRank{20});
    bool crashed = false;
    try {
        os::LockTable::Guard a(locks_, outer);
        os::LockTable::Guard b(locks_, inner);
        procs_.arm(os::ProcId::LockRelease,
                   {os::Manifestation::Kind::PanicNow});
        // Scope exit: b's dtor calls release(inner), which panics
        // inside the instrumented procedure entry; a's dtor then
        // sees the in-flight exception and releases quietly.
    } catch (const sim::CrashException &) {
        crashed = true;
    }
    EXPECT_TRUE(crashed);
    // Only the two acquires count: the crashed release died before
    // its event, and the quiet release records none.
    EXPECT_EQ(locks_.lockdepEvents(), 2u);
    EXPECT_EQ(locks_.rankViolations(), 0u);
    // The crashed release never completed, so the inner lock is
    // still held — the missed-release semantics the fault model
    // depends on. A reboot-style quiet release clears it.
    EXPECT_EQ(locks_.heldDepth(), 1u);
    locks_.releaseQuiet(inner);
    EXPECT_EQ(locks_.heldDepth(), 0u);
    EXPECT_NO_THROW(locks_.acquire(inner));
    locks_.release(inner);
    EXPECT_EQ(locks_.rankViolations(), 0u);
}
