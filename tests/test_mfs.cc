/**
 * @file
 * Memory File System preset semantics: no I/O to the real disk, full
 * functionality, and total data loss on a crash ("data permanent:
 * never" — the performance upper bound of Table 2).
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 32ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

} // namespace

TEST(Mfs, NeverTouchesTheRealDisk)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::MemoryFs));
    kernel.boot(nullptr, true);
    machine.disk().resetStats();

    os::Process proc(1);
    auto &vfs = kernel.vfs();
    std::vector<u8> data(64 * 1024, 0x19);
    for (int i = 0; i < 10; ++i) {
        auto fd = vfs.open(proc, "/m" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        rio::wl::tolerate(vfs.write(proc, fd.value(), data));
        rio::wl::tolerate(vfs.fsync(proc, fd.value()));
        rio::wl::tolerate(vfs.close(proc, fd.value()));
    }
    vfs.sync();
    EXPECT_EQ(machine.disk().stats().sectorsWritten, 0u);
    EXPECT_EQ(machine.disk().stats().sectorsRead, 0u);
}

TEST(Mfs, FullFunctionalityOnRamDisk)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::MemoryFs));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();

    rio::wl::tolerate(vfs.mkdir("/tmp"));
    std::vector<u8> data(30000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 3);
    auto fd = vfs.open(proc, "/tmp/scratch",
                       os::OpenFlags::writeOnly());
    ASSERT_TRUE(vfs.write(proc, fd.value(), data).ok());
    rio::wl::tolerate(vfs.close(proc, fd.value()));
    ASSERT_TRUE(vfs.rename("/tmp/scratch", "/tmp/renamed").ok());
    ASSERT_TRUE(vfs.symlink("/tmp/renamed", "/tmp/sl").ok());

    std::vector<u8> out(30000);
    auto rfd = vfs.open(proc, "/tmp/sl", os::OpenFlags::readOnly());
    ASSERT_TRUE(vfs.read(proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
}

TEST(Mfs, RamDiskOpsAreFree)
{
    sim::Machine machine(machineConfig());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::MemoryFs));
    kernel.boot(nullptr, true);
    os::Process proc(1);
    auto &vfs = kernel.vfs();

    // Force spills through the RAM disk by writing more than the UBC
    // holds... too slow for a unit test; instead verify a sync write
    // policy override costs ~nothing on the RAM disk.
    std::vector<u8> data(8192, 1);
    auto fd = vfs.open(proc, "/x", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(proc, fd.value(), data));
    const SimNs before = machine.clock().now();
    kernel.ufs().fsyncFile(vfs.stat("/x").value().ino, true);
    const SimNs cost = machine.clock().now() - before;
    EXPECT_LT(cost, 1'000'000u); // < 1 ms simulated.
}

TEST(Mfs, CrashLosesEverything)
{
    sim::Machine machine(machineConfig());
    auto kernel = std::make_unique<os::Kernel>(
        machine, os::systemPreset(os::SystemPreset::MemoryFs));
    kernel->boot(nullptr, true);
    os::Process proc(1);
    std::vector<u8> data(1000, 0x61);
    auto fd = kernel->vfs().open(proc, "/gone",
                                 os::OpenFlags::writeOnly());
    rio::wl::tolerate(kernel->vfs().write(proc, fd.value(), data));
    rio::wl::tolerate(kernel->vfs().close(proc, fd.value()));

    try {
        machine.crash(sim::CrashCause::KernelPanic, "mfs crash");
    } catch (const sim::CrashException &) {
    }
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    // A new MFS kernel formats a fresh RAM disk: nothing survives.
    os::Kernel rebooted(machine,
                        os::systemPreset(os::SystemPreset::MemoryFs));
    rebooted.boot(nullptr, false);
    EXPECT_EQ(rebooted.vfs().stat("/gone").status(),
              support::OsStatus::NoEnt);
}
