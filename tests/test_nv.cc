/**
 * @file
 * The rio-nv tier end to end: NvRegion persistence and fault hooks,
 * the NV registry mirror graft under a hardened warm reboot, the
 * intermittent-power campaign dimension, the crash-point model
 * checker with the NV mirror enabled, and the JSONL emission
 * contract that keeps legacy trial records byte-identical when the
 * NV tier is absent.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/nvmirror.hh"
#include "core/registry.hh"
#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "fault/nvfault.hh"
#include "harness/crashcampaign.hh"
#include "harness/crashmc.hh"
#include "harness/sink.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

using L = core::RegistryLayout;
using NvL = core::NvMirrorLayout;

sim::MachineConfig
nvMachineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.nvBytes = 2ull << 20;
    return c;
}

template <typename T>
T
peek(const u8 *slot, u64 off)
{
    T value;
    std::memcpy(&value, slot + off, sizeof(T));
    return value;
}

template <typename T>
void
poke(u8 *slot, u64 off, T value)
{
    std::memcpy(slot + off, &value, sizeof(T));
}

/** Indices of registry slots that carry the live magic. */
std::vector<u64>
liveSlots(sim::Machine &machine)
{
    const auto &mem = machine.mem();
    const auto &reg = mem.region(sim::RegionKind::Registry);
    const auto &buf = mem.region(sim::RegionKind::BufPool);
    const auto &ubc = mem.region(sim::RegionKind::UbcPool);
    std::vector<u64> live;
    for (u64 i = 0; i < buf.pages() + ubc.pages(); ++i) {
        const Addr base = reg.base + i * L::kEntrySize;
        if (base + L::kEntrySize > mem.size())
            break;
        if (peek<u32>(mem.raw() + base, L::kOffMagic) == L::kMagic)
            live.push_back(i);
    }
    return live;
}

} // namespace

// ---------------------------------------------------------------
// NvRegion: the device itself.
// ---------------------------------------------------------------

TEST(NvRegion, SurvivesCrashAndBothResets)
{
    sim::Machine machine(nvMachineConfig());
    ASSERT_NE(machine.nv(), nullptr);
    sim::NvRegion &nv = *machine.nv();
    EXPECT_EQ(nv.size(), 2ull << 20);
    EXPECT_EQ(nv.numLines(), (2ull << 20) / sim::kNvLineSize);

    std::vector<u8> pattern(300);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<u8>(i * 7 + 1);
    nv.write(4096, pattern, machine.clock());
    EXPECT_EQ(nv.stats().writes, 1u);
    EXPECT_EQ(nv.stats().bytesWritten, pattern.size());

    try {
        machine.crash(sim::CrashCause::KernelPanic, "nv test");
    } catch (const sim::CrashException &) {
    }
    machine.reset(sim::ResetKind::Warm);
    EXPECT_EQ(std::memcmp(nv.raw() + 4096, pattern.data(),
                          pattern.size()),
              0);

    machine.reset(sim::ResetKind::Cold);
    EXPECT_EQ(std::memcmp(nv.raw() + 4096, pattern.data(),
                          pattern.size()),
              0);

    std::vector<u8> out(pattern.size());
    nv.read(4096, out, machine.clock());
    EXPECT_EQ(out, pattern);
}

TEST(NvRegion, RecentLinesAreDistinctAndRetireOnCrash)
{
    sim::Machine machine(nvMachineConfig());
    sim::NvRegion &nv = *machine.nv();

    const std::vector<u8> bytes(100, 0xaa);
    // Spans lines 0 and 1; the rewrite must not duplicate them.
    nv.write(0, bytes, machine.clock());
    nv.write(0, bytes, machine.clock());
    nv.write(sim::kNvLineSize * 5, bytes, machine.clock());
    const auto &recent = nv.recentLines();
    EXPECT_EQ(recent.size(), 4u); // 0, 1, 5, 6.

    nv.onCrash(machine.clock().now());
    EXPECT_TRUE(nv.recentLines().empty());
    EXPECT_EQ(nv.stats().crashes, 1u);
}

TEST(NvRegion, WriteObserverSeesEveryStore)
{
    struct Probe final : sim::NvWriteObserver
    {
        std::vector<std::pair<u64, u64>> writes;
        void onNvWrite(u64 offset, u64 len) override
        {
            writes.emplace_back(offset, len);
        }
    };

    sim::Machine machine(nvMachineConfig());
    sim::NvRegion &nv = *machine.nv();
    Probe probe;
    nv.setWriteObserver(&probe);
    const std::vector<u8> bytes(17, 0x5c);
    nv.write(128, bytes, machine.clock());
    nv.write(4096, bytes, machine.clock());
    nv.setWriteObserver(nullptr);
    nv.write(8192, bytes, machine.clock());

    ASSERT_EQ(probe.writes.size(), 2u);
    EXPECT_EQ(probe.writes[0], (std::pair<u64, u64>{128, 17}));
    EXPECT_EQ(probe.writes[1], (std::pair<u64, u64>{4096, 17}));
}

// ---------------------------------------------------------------
// NvFaultModel: deterministic decay.
// ---------------------------------------------------------------

TEST(NvFault, ReplaysExactlyFromSeedAndZeroIntensityIsInert)
{
    fault::NvFaultConfig aggressive;
    aggressive.decayChance = 1.0;
    aggressive.tornLineChance = 1.0;

    auto runOnce = [&](double intensity) {
        sim::Machine machine(nvMachineConfig());
        sim::NvRegion &nv = *machine.nv();
        const std::vector<u8> bytes(256, 0x3e);
        nv.write(0, bytes, machine.clock());
        nv.write(64 * 100, bytes, machine.clock());
        fault::NvFaultConfig config = aggressive;
        config.intensity = intensity;
        fault::NvFaultModel model(support::Rng(42), config);
        model.install(nv);
        nv.onCrash(machine.clock().now());
        return std::make_pair(
            std::vector<u8>(nv.raw(), nv.raw() + nv.size()),
            model.stats());
    };

    const auto [imageA, statsA] = runOnce(1.0);
    const auto [imageB, statsB] = runOnce(1.0);
    EXPECT_EQ(imageA, imageB);
    EXPECT_EQ(statsA.bitsFlipped, statsB.bitsFlipped);
    EXPECT_EQ(statsA.linesTorn, statsB.linesTorn);
    EXPECT_GT(statsA.bitsFlipped, 0u);
    EXPECT_GT(statsA.linesTorn, 0u);

    const auto [imageOff, statsOff] = runOnce(0.0);
    EXPECT_EQ(statsOff.bitsFlipped, 0u);
    EXPECT_EQ(statsOff.linesTorn, 0u);
    sim::Machine pristine(nvMachineConfig());
    const std::vector<u8> bytes(256, 0x3e);
    pristine.nv()->write(0, bytes, pristine.clock());
    pristine.nv()->write(64 * 100, bytes, pristine.clock());
    EXPECT_EQ(std::memcmp(imageOff.data(), pristine.nv()->raw(),
                          imageOff.size()),
              0);
}

// ---------------------------------------------------------------
// Location-bound checksums.
// ---------------------------------------------------------------

TEST(BindChecksum, BindsContentToItsDiskBlock)
{
    const u32 sum = 0x1234abcdu;
    EXPECT_EQ(core::bindChecksum(sum, 7), core::bindChecksum(sum, 7));
    EXPECT_NE(core::bindChecksum(sum, 7), core::bindChecksum(sum, 8));
    // A page that keeps its content but moves to another block must
    // not verify against the old binding — that is the cross-linked
    // claim the warm reboot has to catch.
    const u32 bound = core::bindChecksum(sum, 7);
    EXPECT_NE(bound, core::bindChecksum(sum, 9));
    EXPECT_NE(core::bindChecksum(0, 1), core::bindChecksum(0, 2));
}

// ---------------------------------------------------------------
// The NV mirror graft under a hardened warm reboot.
// ---------------------------------------------------------------

namespace
{

/** A crashed rio-nv machine with one durable file, post-reset:
 *  ready for image surgery and a warm reboot. */
struct NvCrashRig
{
    sim::Machine machine;
    os::KernelConfig config;
    core::RioOptions options;
    std::vector<u8> payload;

    NvCrashRig()
        : machine(nvMachineConfig()),
          config(os::systemPreset(os::SystemPreset::RioNvProtected)),
          payload(8192, 0x6b)
    {
        options.protection = config.protection;
        options.maintainChecksums = true;
        options.nvBacked = config.rioNvMirror;
        auto rio =
            std::make_unique<core::RioSystem>(machine, options);
        auto kernel =
            std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), true);

        os::Process proc(1);
        auto &vfs = kernel->vfs();
        auto fd =
            vfs.open(proc, "/keep", os::OpenFlags::writeOnly());
        wl::tolerate(vfs.write(proc, fd.value(), payload));
        wl::tolerate(vfs.close(proc, fd.value()));

        try {
            machine.crash(sim::CrashCause::KernelPanic, "nv rig");
        } catch (const sim::CrashException &) {
        }
        rio->deactivate();
        rio.reset();
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);
    }

    core::WarmRebootReport reboot()
    {
        core::WarmReboot warm(machine);
        auto report = warm.dumpAndRestoreMetadata();
        core::RioSystem rio2(machine, options);
        os::Kernel rebooted(machine, config);
        rebooted.boot(&rio2, false);
        warm.restoreData(rebooted.vfs(), report);

        os::Process proc(1);
        std::vector<u8> out(payload.size());
        auto fd = rebooted.vfs().open(proc, "/keep",
                                      os::OpenFlags::readOnly());
        if (fd.ok()) {
            wl::tolerate(
                rebooted.vfs().read(proc, fd.value(), out));
            fileIntact = out == payload;
        }
        return report;
    }

    bool fileIntact = false;
};

} // namespace

TEST(NvGraft, RepairsEverySmashedRegistrySlot)
{
    NvCrashRig rig;
    const auto live = liveSlots(rig.machine);
    ASSERT_FALSE(live.empty());

    // An outage scribbled the magic of every live slot: without the
    // mirror the whole registry — and the dirty file data it claims
    // — would be gone.
    const auto &reg =
        rig.machine.mem().region(sim::RegionKind::Registry);
    for (const u64 i : live) {
        poke<u32>(rig.machine.mem().raw() + reg.base +
                      i * L::kEntrySize,
                  L::kOffMagic, 0x13371337u);
    }

    const auto report = rig.reboot();
    EXPECT_TRUE(report.nvMirrorPresent);
    EXPECT_FALSE(report.nvMirrorCorrupt);
    EXPECT_EQ(report.nvEntriesGrafted, live.size());
    EXPECT_TRUE(rig.fileIntact);
}

TEST(NvGraft, RejectsAMirrorWithASmashedHeader)
{
    NvCrashRig rig;
    // The outage destroyed the mirror header itself; the graft must
    // reject the whole mirror, and the untouched live registry must
    // carry the reboot on its own.
    std::memset(rig.machine.nv()->raw(), 0xee, NvL::kHeaderBytes);

    const auto report = rig.reboot();
    EXPECT_TRUE(report.nvMirrorPresent);
    EXPECT_TRUE(report.nvMirrorCorrupt);
    EXPECT_EQ(report.nvEntriesGrafted, 0u);
    EXPECT_TRUE(rig.fileIntact);
}

TEST(NvGraft, RefusesAMirrorSlotThatFailsItsOwnChecksum)
{
    NvCrashRig rig;
    const auto live = liveSlots(rig.machine);
    ASSERT_FALSE(live.empty());

    // Smash one live slot, and tear the matching mirror slot just
    // enough that it still decodes (magic, state, kind intact) but
    // its location-bound checksum no longer matches the page. The
    // hardened graft must leave the slot dead rather than graft a
    // torn mirror entry.
    const auto &reg =
        rig.machine.mem().region(sim::RegionKind::Registry);
    const u64 victim = live.front();
    u8 *slot =
        rig.machine.mem().raw() + reg.base + victim * L::kEntrySize;
    poke<u32>(slot, L::kOffMagic, 0x13371337u);
    u8 *mirrorSlot = rig.machine.nv()->raw() + NvL::kHeaderBytes +
                     victim * L::kEntrySize;
    poke<u32>(mirrorSlot, L::kOffChecksum,
              peek<u32>(mirrorSlot, L::kOffChecksum) ^ 0x00ff00ffu);

    const auto report = rig.reboot();
    EXPECT_TRUE(report.nvMirrorPresent);
    EXPECT_FALSE(report.nvMirrorCorrupt);
    EXPECT_EQ(report.nvEntriesGrafted, 0u);
}

// ---------------------------------------------------------------
// The intermittent-power campaign dimension.
// ---------------------------------------------------------------

TEST(PowerCycle, RunsTheOutageBudgetAndRecoversClean)
{
    harness::CampaignConfig config;
    config.seed = 7;
    config.powerCycleOps = 400;
    config.powerCycles = 2;
    config.observationNs = 600 * sim::kNsPerSec;
    config.progress = false;
    config.verbose = false;
    harness::CrashCampaign campaign(config);

    const auto record = campaign.runTrial(
        harness::SystemKind::RioNvProtected,
        fault::FaultType::BitFlipHeap, 0);
    EXPECT_TRUE(record.crashed);
    EXPECT_TRUE(record.nvBacked);
    EXPECT_TRUE(record.powerCycleMode);
    EXPECT_EQ(record.powerCycles, 2u);
    EXPECT_GT(record.workloadOps, 0u);
    EXPECT_GT(record.recoveryNs, 0u);
    EXPECT_GT(record.nvMirrorWrites, 0u);
    // No damage model beyond the outages themselves: the hardened
    // rio-nv reboot must come back with every file intact.
    EXPECT_EQ(record.corruptFiles, 0u);

    // The whole trial replays byte-exactly from its seed.
    const auto again = campaign.runTrial(
        harness::SystemKind::RioNvProtected,
        fault::FaultType::BitFlipHeap, 0);
    EXPECT_EQ(harness::trialToJson(record),
              harness::trialToJson(again));
}

// ---------------------------------------------------------------
// JSONL contract: legacy records stay byte-identical.
// ---------------------------------------------------------------

TEST(NvSink, LegacyTrialJsonCarriesNoNvOrPowerKeys)
{
    harness::TrialRecord record;
    record.crashed = true;
    const std::string json = harness::trialToJson(record);
    EXPECT_EQ(json.find("nv"), std::string::npos);
    EXPECT_EQ(json.find("power"), std::string::npos);

    harness::TrialRecord nvRecord = record;
    nvRecord.nvBacked = true;
    nvRecord.powerCycleMode = true;
    const std::string nvJson = harness::trialToJson(nvRecord);
    EXPECT_NE(nvJson.find("\"nvBacked\":true"), std::string::npos);
    EXPECT_NE(nvJson.find("\"powerCycleMode\":true"),
              std::string::npos);
}

TEST(NvSink, NvKnobsDoNotPerturbANonNvTrial)
{
    // Table 1's trials.jsonl must stay byte-identical whether the NV
    // tier is merely disabled or the knobs never existed: enabling
    // the NV fault stream on a machine without an NV region draws
    // nothing and emits nothing.
    harness::CampaignConfig plain;
    plain.seed = 11;
    plain.progress = false;
    plain.verbose = false;
    harness::CampaignConfig knobbed = plain;
    knobbed.nvFaultIntensity = 1.0;

    const auto a =
        harness::CrashCampaign(plain).runTrial(
            harness::SystemKind::RioWithProtection,
            fault::FaultType::BitFlipHeap, 0);
    const auto b =
        harness::CrashCampaign(knobbed).runTrial(
            harness::SystemKind::RioWithProtection,
            fault::FaultType::BitFlipHeap, 0);
    EXPECT_FALSE(a.nvBacked);
    EXPECT_EQ(harness::trialToJson(a), harness::trialToJson(b));
}

// ---------------------------------------------------------------
// The crash-point model checker over rio-nv.
// ---------------------------------------------------------------

TEST(NvCrashMc, EveryShadowFlipPointRecoversWithTheMirror)
{
    harness::CrashMcConfig config;
    config.seed = 3;
    config.ops = 3;
    config.hardened = true;
    config.nvBacked = true;
    config.progress = false;
    harness::CrashMc checker(config);

    const auto result =
        checker.runWorkload(harness::McWorkloadKind::ShadowFlip);
    EXPECT_GT(result.pointsRun, 0u);
    EXPECT_EQ(result.unrecoveredPoints, 0u);
    EXPECT_EQ(result.driftPoints, 0u);
    // The mirror's stores are themselves enumerable crash points.
    EXPECT_GT(result.perClass[static_cast<u32>(
                  harness::McEventClass::NvMirrorWrite)],
              0u);
}
