/**
 * @file
 * Small-scale end-to-end check that the Table 2 *shape* holds: the
 * paper's ordering of the eight system configurations on cp+rm, and
 * the headline relations (Rio ≈ MFS, Rio ≫ write-through, protection
 * ≈ free). Runs at 2 MB so it stays test-sized; the bench binary
 * regenerates the full-scale table.
 */

#include <gtest/gtest.h>

#include "harness/perfrun.hh"

using namespace rio;

namespace
{

class PerfShape : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        harness::PerfConfig config;
        config.cprmBytes = 2ull << 20;
        config.andrewFiles = 12;
        harness::PerfRun perf(config);
        rows_ = new std::vector<harness::PerfRow>(perf.runAll());
    }

    static void
    TearDownTestSuite()
    {
        delete rows_;
        rows_ = nullptr;
    }

    static const harness::PerfRow &
    row(os::SystemPreset preset)
    {
        for (const auto &entry : *rows_) {
            if (entry.preset == preset)
                return entry;
        }
        throw std::logic_error("preset missing");
    }

    static std::vector<harness::PerfRow> *rows_;
};

std::vector<harness::PerfRow> *PerfShape::rows_ = nullptr;

using os::SystemPreset;

} // namespace

TEST_F(PerfShape, CpRmOrderingMatchesPaper)
{
    EXPECT_LE(row(SystemPreset::MemoryFs).cprmTotal(),
              row(SystemPreset::RioProtected).cprmTotal());
    EXPECT_LE(row(SystemPreset::RioProtected).cprmTotal(),
              row(SystemPreset::UfsDelayAll).cprmTotal() * 1.15);
    EXPECT_LT(row(SystemPreset::UfsDelayAll).cprmTotal(),
              row(SystemPreset::AdvFsJournal).cprmTotal());
    EXPECT_LT(row(SystemPreset::AdvFsJournal).cprmTotal(),
              row(SystemPreset::UfsDefault).cprmTotal());
    EXPECT_LT(row(SystemPreset::UfsDefault).cprmTotal(),
              row(SystemPreset::UfsWriteThroughClose).cprmTotal());
    EXPECT_LT(row(SystemPreset::UfsWriteThroughClose).cprmTotal(),
              row(SystemPreset::UfsWriteThroughWrite).cprmTotal());
}

TEST_F(PerfShape, RioBeatsWriteThroughByPaperBand)
{
    // Paper: 4-22x across workloads. At the tiny test scale the gap
    // narrows; require at least 3x on cp+rm and 2x on Sdet.
    EXPECT_GT(row(SystemPreset::UfsWriteThroughWrite).cprmTotal(),
              row(SystemPreset::RioProtected).cprmTotal() * 3);
    EXPECT_GT(row(SystemPreset::UfsWriteThroughWrite).sdetSeconds,
              row(SystemPreset::RioProtected).sdetSeconds * 2);
}

TEST_F(PerfShape, ProtectionIsEssentiallyFree)
{
    const auto &with = row(SystemPreset::RioProtected);
    const auto &without = row(SystemPreset::RioNoProtection);
    EXPECT_LT(with.cprmTotal(), without.cprmTotal() * 1.05);
    EXPECT_LT(with.sdetSeconds, without.sdetSeconds * 1.05);
    EXPECT_LT(with.andrewSeconds, without.andrewSeconds * 1.05);
}

TEST_F(PerfShape, RioIsNearMemorySpeedOnComputeWorkloads)
{
    EXPECT_LT(row(SystemPreset::RioProtected).andrewSeconds,
              row(SystemPreset::MemoryFs).andrewSeconds * 1.15);
    EXPECT_LT(row(SystemPreset::RioProtected).sdetSeconds,
              row(SystemPreset::MemoryFs).sdetSeconds * 1.25);
}

TEST_F(PerfShape, NvMirrorCostsLittleOverPlainRio)
{
    // The synchronous registry mirror charges NV controller time on
    // every registry field write; it must stay a modest tax, not a
    // write-through regression.
    const auto &nv = row(SystemPreset::RioNvProtected);
    const auto &rio = row(SystemPreset::RioProtected);
    EXPECT_LT(nv.cprmTotal(), rio.cprmTotal() * 1.5);
    EXPECT_LT(nv.sdetSeconds, rio.sdetSeconds * 1.5);
    EXPECT_LT(nv.andrewSeconds, rio.andrewSeconds * 1.5);
}

TEST_F(PerfShape, SdetOrderingMatchesPaper)
{
    EXPECT_LE(row(SystemPreset::UfsDelayAll).sdetSeconds,
              row(SystemPreset::AdvFsJournal).sdetSeconds * 1.10);
    EXPECT_LT(row(SystemPreset::AdvFsJournal).sdetSeconds,
              row(SystemPreset::UfsDefault).sdetSeconds);
    EXPECT_LT(row(SystemPreset::UfsDefault).sdetSeconds,
              row(SystemPreset::UfsWriteThroughClose).sdetSeconds);
    EXPECT_LT(row(SystemPreset::UfsWriteThroughClose).sdetSeconds,
              row(SystemPreset::UfsWriteThroughWrite).sdetSeconds);
}
