/**
 * @file
 * Property-based tests (parameterized sweeps).
 *
 *  - CrashAnywhereProperty: the paper's core invariant. For any
 *    workload prefix, crash the Rio system at that point with no
 *    warning, warm-reboot, and every completed operation must be
 *    intact (memTest replay comparison). Swept over seeds and crash
 *    points.
 *  - DifferentialFsProperty: the simulated UFS agrees with a
 *    host-side model file system over long random operation
 *    sequences, across seeds and system presets.
 *  - PolicyOrderingProperty: more durable configurations never write
 *    less to disk, across seeds.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/memtest.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(u64 seed)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.seed = seed;
    return c;
}

} // namespace

// ------------------------------------------------------------------
// Crash-anywhere recovery.
// ------------------------------------------------------------------

class CrashAnywhereProperty
    : public ::testing::TestWithParam<std::tuple<u64, int>>
{
};

TEST_P(CrashAnywhereProperty, EveryCompletedWriteSurvives)
{
    const u64 seed = std::get<0>(GetParam());
    const int crashAfterOps = std::get<1>(GetParam());

    sim::Machine machine(machineConfig(seed));
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    wl::MemTestConfig memtestConfig;
    memtestConfig.seed = seed * 13 + 1;
    memtestConfig.maxFileSetBytes = 1 << 20;
    wl::MemTest memtest(*kernel, memtestConfig);
    memtest.setup();
    for (int op = 0; op < crashAfterOps; ++op)
        memtest.step();

    try {
        machine.crash(sim::CrashCause::KernelPanic, "property crash");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);

    const auto result = memtest.verify(rebooted);
    EXPECT_FALSE(result.corrupt())
        << "seed=" << seed << " ops=" << crashAfterOps << ": "
        << (result.details.empty() ? std::string()
                                   : result.details.front());
    EXPECT_EQ(report.corruptEntries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashAnywhereProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 7, 100, 800)));

// ------------------------------------------------------------------
// Differential testing against the model file system.
// ------------------------------------------------------------------

class DifferentialFsProperty
    : public ::testing::TestWithParam<std::tuple<u64, os::SystemPreset>>
{
};

TEST_P(DifferentialFsProperty, KernelMatchesModelOracle)
{
    const u64 seed = std::get<0>(GetParam());
    const os::SystemPreset preset = std::get<1>(GetParam());

    sim::Machine machine(machineConfig(seed));
    std::unique_ptr<core::RioSystem> rio;
    const os::KernelConfig config = os::systemPreset(preset);
    if (config.rio) {
        core::RioOptions options;
        options.protection = config.protection;
        rio = std::make_unique<core::RioSystem>(machine, options);
    }
    os::Kernel kernel(machine, config);
    kernel.boot(rio.get(), true);

    wl::MemTestConfig memtestConfig;
    memtestConfig.seed = seed * 7 + 5;
    memtestConfig.maxFileSetBytes = 1 << 20;
    wl::MemTest memtest(kernel, memtestConfig);
    memtest.setup();
    for (int op = 0; op < 2500; ++op)
        memtest.step();

    EXPECT_FALSE(memtest.liveMismatchSeen());
    const auto result = memtest.verify(kernel);
    EXPECT_FALSE(result.corrupt())
        << (result.details.empty() ? std::string()
                                   : result.details.front());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialFsProperty,
    ::testing::Combine(
        ::testing::Values(11, 22, 33),
        ::testing::Values(os::SystemPreset::UfsDefault,
                          os::SystemPreset::UfsDelayAll,
                          os::SystemPreset::AdvFsJournal,
                          os::SystemPreset::MemoryFs,
                          os::SystemPreset::UfsWriteThroughWrite,
                          os::SystemPreset::RioProtected)));

// ------------------------------------------------------------------
// Durability ordering.
// ------------------------------------------------------------------

class PolicyOrderingProperty : public ::testing::TestWithParam<u64>
{
  protected:
    u64
    diskWritesFor(os::SystemPreset preset)
    {
        sim::Machine machine(machineConfig(GetParam()));
        std::unique_ptr<core::RioSystem> rio;
        const os::KernelConfig config = os::systemPreset(preset);
        if (config.rio) {
            core::RioOptions options;
            options.protection = os::ProtectionMode::Off;
            rio = std::make_unique<core::RioSystem>(machine, options);
        }
        os::Kernel kernel(machine, config);
        kernel.boot(rio.get(), true);
        kernel.fsDisk().resetStats();

        os::Process proc(1);
        auto &vfs = kernel.vfs();
        std::vector<u8> data(4096);
        support::Rng rng(GetParam());
        for (int i = 0; i < 60; ++i) {
            rng.fill(data);
            auto fd = vfs.open(proc, "/f" + std::to_string(i % 20),
                               os::OpenFlags::writeOnly());
            if (fd.ok()) {
                rio::wl::tolerate(vfs.write(proc, fd.value(), data));
                rio::wl::tolerate(vfs.close(proc, fd.value()));
            }
        }
        kernel.fsDisk().drain(machine.clock());
        return kernel.fsDisk().stats().sectorsWritten;
    }
};

TEST_P(PolicyOrderingProperty, MoreDurableNeverWritesLess)
{
    const u64 rio = diskWritesFor(os::SystemPreset::RioProtected);
    const u64 delay = diskWritesFor(os::SystemPreset::UfsDelayAll);
    const u64 ufs = diskWritesFor(os::SystemPreset::UfsDefault);
    const u64 wtc =
        diskWritesFor(os::SystemPreset::UfsWriteThroughClose);
    const u64 wtw =
        diskWritesFor(os::SystemPreset::UfsWriteThroughWrite);

    EXPECT_EQ(rio, 0u);
    EXPECT_LE(rio, delay);
    EXPECT_LE(delay, ufs);
    EXPECT_LE(ufs, wtc);
    EXPECT_LE(wtc, wtw);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyOrderingProperty,
                         ::testing::Values(101, 202, 303));
