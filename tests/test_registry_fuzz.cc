/**
 * @file
 * Registry-corruption recovery sweep: crash a Rio kernel, scribble
 * the surviving memory image with the post-crash corruption stage
 * (fault/postcrash.hh), then require that the hardened warm reboot
 * (a) never pushes a checksum-mismatched or contested metadata page
 * to disk — the never-restore-known-bad invariant, checked against
 * an independent host-side oracle that snapshots the threatened
 * disk blocks — (b) accounts for every dirty metadata entry exactly
 * once, and (c) leaves a volume that boots, repairs and supports
 * normal use.
 *
 * Set RIO_FUZZ_PROFILE=1 to print one damage/decision line per seed
 * (used to promote interesting seeds into registry_fuzz_corpus.hh).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/registry.hh"
#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "fault/postcrash.hh"
#include "harness/oracle.hh"
#include "os/kernel.hh"
#include "registry_fuzz_corpus.hh"
#include "sim/machine.hh"
#include "support/rng.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(u64 seed)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 32ull << 20;
    c.swapBytes = 16ull << 20;
    c.seed = seed;
    return c;
}

} // namespace

class RegistryFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(RegistryFuzz, HardenedRecoverySurvivesACorruptedImage)
{
    const u64 seed = GetParam();
    sim::Machine machine(machineConfig(seed));
    os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioNoProtection);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    // A deterministic burst of activity, left unflushed: dirty
    // dirents, inodes, bitmaps and data pages for the crash to
    // strand in memory.
    os::Process proc(1);
    auto &vfs = kernel->vfs();
    support::Rng wrng(seed * 48271 + 11);
    for (int i = 0; i < 10; ++i) {
        const std::string dir = "/d" + std::to_string(i % 4);
        rio::wl::tolerate(vfs.mkdir(dir));
        auto fd = vfs.open(proc, dir + "/f" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        if (fd.ok()) {
            std::vector<u8> data(wrng.between(200, 24000));
            wrng.fill(data);
            rio::wl::tolerate(vfs.write(proc, fd.value(), data));
            rio::wl::tolerate(vfs.close(proc, fd.value()));
        }
        if (i == 6)
            rio::wl::tolerate(vfs.unlink("/d2/f6"));
    }

    try {
        machine.crash(sim::CrashCause::KernelPanic, "fuzz");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    // Damage the surviving image the way an adversarial outage would.
    fault::PostCrashConfig postConfig;
    fault::PostCrashCorruptor corruptor(
        machine, support::Rng(seed * 2654435761ull + 1), postConfig);
    const auto damage = corruptor.corrupt();

    // Host-side oracle, independent of the restore path (shared with
    // the crash campaign and crashmc — see harness/oracle.hh): parse
    // the damaged registry and snapshot the disk block of every
    // entry the hardened policy must refuse.
    const auto capture = harness::captureRecoveryOracle(
        machine, core::RestorePolicy::hardened());

    core::WarmReboot warm(machine); // RestorePolicy::hardened()
    auto report = warm.dumpAndRestoreMetadata();

    const auto verdict =
        harness::checkRecoveryOracle(machine, capture, report);

    // (a) Never restore known-bad: every block the oracle froze is
    // byte-identical after the metadata restore.
    for (const u64 block : verdict.violatedBlocks) {
        ADD_FAILURE() << "known-bad metadata reached disk block "
                      << block << " at seed " << seed;
    }

    // (b) Exact accounting: every dirty metadata entry is restored,
    // quarantined, rejected as contested, or unrestorable.
    EXPECT_TRUE(verdict.accountingExact)
        << "restore accounting leaks entries at seed " << seed;

    if (std::getenv("RIO_FUZZ_PROFILE") != nullptr) {
        std::printf(
            "seed %llu: flips %llu magics %llu claims %llu xpages "
            "%llu smashed %llu shadows %llu tail %llu | quarantined "
            "%llu contested %llu bounds %llu shadowBad %llu "
            "unrestorable %llu frozen %zu\n",
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(
                damage.registryBitsFlipped),
            static_cast<unsigned long long>(damage.magicsSmashed),
            static_cast<unsigned long long>(damage.claimsCrossLinked),
            static_cast<unsigned long long>(damage.pagesCrossLinked),
            static_cast<unsigned long long>(
                damage.pageBytesSmashed / sim::kPageSize),
            static_cast<unsigned long long>(damage.shadowsSmashed),
            static_cast<unsigned long long>(damage.tailBytesZeroed),
            static_cast<unsigned long long>(
                report.recovery.metadataQuarantined),
            static_cast<unsigned long long>(
                report.recovery.duplicateClaims),
            static_cast<unsigned long long>(
                report.recovery.boundsViolations),
            static_cast<unsigned long long>(
                report.recovery.shadowChecksumBad),
            static_cast<unsigned long long>(
                report.metadataUnrestorable),
            capture.frozen.size());
    }

    // (c) The recovered volume boots, fsck repairs what the
    // quarantine left stale, and normal operation works.
    auto rio2 = std::make_unique<core::RioSystem>(machine, options);
    os::Kernel rebooted(machine, config);
    try {
        rebooted.boot(rio2.get(), false);
    } catch (const sim::CrashException &crash) {
        FAIL() << "recovered volume failed to boot at seed " << seed
               << ": " << crash.what();
    }
    warm.restoreData(rebooted.vfs(), report);

    auto &vfs2 = rebooted.vfs();
    os::Process proc2(2);
    auto fd = vfs2.open(proc2, "/fresh", os::OpenFlags::writeOnly());
    ASSERT_TRUE(fd.ok());
    std::vector<u8> data(4096, 0x5d);
    ASSERT_TRUE(vfs2.write(proc2, fd.value(), data).ok());
    ASSERT_TRUE(vfs2.close(proc2, fd.value()).ok());
    std::vector<u8> out(4096);
    auto rfd = vfs2.open(proc2, "/fresh", os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    ASSERT_TRUE(vfs2.read(proc2, rfd.value(), out).ok());
    EXPECT_EQ(out, data);

    // Whatever survived of the old tree is traversable without
    // tripping kernel consistency checks.
    auto top = vfs2.readdir("/");
    ASSERT_TRUE(top.ok());
    for (const auto &entry : top.value()) {
        if (entry.type != os::FileType::Dir)
            continue;
        auto sub = vfs2.readdir("/" + entry.name);
        if (!sub.ok())
            continue;
        for (const auto &inner : sub.value())
            rio::wl::tolerate(vfs2.stat("/" + entry.name + "/" + inner.name));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegistryFuzz,
                         ::testing::Range<u64>(1, 16));

// Promoted regression corpus: seeds from wider offline sweeps whose
// damage exercises specific hardened-recovery decisions (see
// registry_fuzz_corpus.hh for the per-seed profile).
INSTANTIATE_TEST_SUITE_P(
    Corpus, RegistryFuzz,
    ::testing::ValuesIn(tests::kRegistryFuzzCorpus));
