/**
 * @file
 * Tests for the Rio core: registry maintenance, both protection
 * mechanisms (VM/TLB with the ABOX bit, and code patching), shadow
 * metadata updates, checksums, and the registry parser used by the
 * warm reboot.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

struct RioRig
{
    explicit RioRig(os::ProtectionMode mode, bool checksums = true)
        : machine(machineConfig())
    {
        config = os::systemPreset(os::SystemPreset::RioProtected);
        config.protection = mode;
        core::RioOptions options;
        options.protection = mode;
        options.maintainChecksums = checksums;
        rio = std::make_unique<core::RioSystem>(machine, options);
        kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), true);
    }

    sim::Machine machine;
    os::KernelConfig config;
    std::unique_ptr<core::RioSystem> rio;
    std::unique_ptr<os::Kernel> kernel;
    os::Process proc{1};
};

} // namespace

TEST(RioRegistry, TracksDataPagesWithIdentity)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/file", os::OpenFlags::writeOnly());
    std::vector<u8> data(10000, 0x21);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    const InodeNo ino = vfs.stat("/file").value().ino;

    // Find the page caching offset 8192..16383 and check its entry.
    auto ref = rig.kernel->ubc().getPage(1, ino, 1, false);
    const Addr page = rig.kernel->ubc().pagePhys(ref);
    auto entry = rig.rio->entryFor(page);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->kind, core::RegistryLayout::kKindData);
    EXPECT_EQ(entry->ino, ino);
    EXPECT_EQ(entry->offset, sim::kPageSize);
    EXPECT_TRUE(entry->dirty);
    EXPECT_EQ(entry->size, 10000u - sim::kPageSize);
    EXPECT_NE(entry->checksum, 0u);
}

TEST(RioRegistry, ChecksumMatchesPageContents)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/c", os::OpenFlags::writeOnly());
    std::vector<u8> data(4096, 0x37);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    auto sweep = rig.rio->verifyChecksums();
    EXPECT_GT(sweep.checked, 0u);
    EXPECT_EQ(sweep.mismatches, 0u);
}

TEST(RioRegistry, ChecksumCatchesDirectCorruption)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/victim",
                       os::OpenFlags::writeOnly());
    std::vector<u8> data(4096, 0x44);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    const InodeNo ino = vfs.stat("/victim").value().ino;
    auto ref = rig.kernel->ubc().getPage(1, ino, 0, false);
    const Addr page = rig.kernel->ubc().pagePhys(ref);
    // A wild store that bypasses every legitimate write path.
    rig.machine.mem().raw()[page + 123] ^= 0xff;

    auto sweep = rig.rio->verifyChecksums();
    EXPECT_EQ(sweep.mismatches, 1u);
    ASSERT_EQ(sweep.badPages.size(), 1u);
    EXPECT_EQ(sweep.badPages[0], page);
}

TEST(RioRegistry, InvalidateFreesEntry)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/gone", os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 0x55);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    const InodeNo ino = vfs.stat("/gone").value().ino;
    auto ref = rig.kernel->ubc().getPage(1, ino, 0, false);
    const Addr page = rig.kernel->ubc().pagePhys(ref);
    ASSERT_TRUE(rig.rio->entryFor(page).has_value());

    rio::wl::tolerate(vfs.unlink("/gone"));
    EXPECT_FALSE(rig.rio->entryFor(page).has_value());
}

TEST(RioProtection, VmTlbStopsWildStoreToFileCache)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    const Addr page =
        rig.machine.mem().region(sim::RegionKind::UbcPool).base;
    EXPECT_THROW(rig.machine.bus().store64(page, 0xbad),
                 sim::CrashException);
    EXPECT_EQ(rig.rio->stats().protectionSaves, 1u);
}

TEST(RioProtection, VmTlbStopsKsegBypass)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    // The ABOX bit is set, so even a physical (KSEG) store faults.
    EXPECT_TRUE(rig.machine.cpu().mapKsegThroughTlb());
    const Addr page =
        rig.machine.mem().region(sim::RegionKind::UbcPool).base;
    EXPECT_THROW(
        rig.machine.bus().store64(sim::physToKseg(page), 0xbad),
        sim::CrashException);
}

TEST(RioProtection, RegistryItselfIsProtected)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    const Addr reg =
        rig.machine.mem().region(sim::RegionKind::Registry).base;
    EXPECT_THROW(rig.machine.bus().store64(reg, 0xbad),
                 sim::CrashException);
}

TEST(RioProtection, LegitimateWritesStillWork)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(20000, 0x61);
    auto fd = vfs.open(rig.proc, "/ok", os::OpenFlags::writeOnly());
    ASSERT_TRUE(vfs.write(rig.proc, fd.value(), data).ok());
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    std::vector<u8> out(20000);
    auto rfd = vfs.open(rig.proc, "/ok", os::OpenFlags::readOnly());
    ASSERT_TRUE(vfs.read(rig.proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
    EXPECT_EQ(rig.rio->stats().protectionSaves, 0u);
}

TEST(RioProtection, CodePatchingStopsFileCacheStores)
{
    RioRig rig(os::ProtectionMode::CodePatch);
    // KSEG is NOT forced through the TLB in this mode...
    EXPECT_FALSE(rig.machine.cpu().mapKsegThroughTlb());
    // ...but the inserted check stops the store anyway.
    const Addr page =
        rig.machine.mem().region(sim::RegionKind::BufPool).base;
    EXPECT_THROW(rig.machine.bus().store64(page, 0xbad),
                 sim::CrashException);
    EXPECT_THROW(
        rig.machine.bus().store64(sim::physToKseg(page) + 8, 0xbad),
        sim::CrashException);
    EXPECT_EQ(rig.rio->stats().protectionSaves, 2u);
}

TEST(RioProtection, CodePatchingAllowsNormalOperation)
{
    RioRig rig(os::ProtectionMode::CodePatch);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(10000, 0x71);
    auto fd = vfs.open(rig.proc, "/cp", os::OpenFlags::writeOnly());
    ASSERT_TRUE(vfs.write(rig.proc, fd.value(), data).ok());
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    EXPECT_EQ(rig.rio->stats().protectionSaves, 0u);
}

TEST(RioProtection, OffModeAllowsCorruption)
{
    RioRig rig(os::ProtectionMode::Off);
    const Addr page =
        rig.machine.mem().region(sim::RegionKind::UbcPool).base;
    EXPECT_NO_THROW(rig.machine.bus().store64(page, 0xbad));
    EXPECT_EQ(rig.rio->stats().protectionSaves, 0u);
}

TEST(RioProtection, DeactivateRestoresWritability)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    rig.rio->deactivate();
    const Addr page =
        rig.machine.mem().region(sim::RegionKind::UbcPool).base;
    EXPECT_NO_THROW(rig.machine.bus().store64(page, 0x11));
    EXPECT_FALSE(rig.machine.cpu().mapKsegThroughTlb());
}

TEST(RioShadow, MetadataUpdateUsesShadow)
{
    RioRig rig(os::ProtectionMode::VmTlb);
    const u64 shadowsBefore = rig.rio->stats().shadowCopies;
    rio::wl::tolerate(rig.kernel->vfs().mkdir("/newdir"));
    EXPECT_GT(rig.rio->stats().shadowCopies, shadowsBefore);
}

TEST(RioShadow, EntryIsChangingDuringWindowActiveAfter)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &buf = rig.kernel->bufferCache();
    auto ref = buf.bread(1, rig.kernel->ufs().geometry().itStart);
    const Addr page = buf.pageAddr(ref);
    {
        // First window dirties the block; shadowing only covers
        // dirty metadata (clean blocks are recoverable from disk).
        os::BufferCache::WriteWindow window(buf, ref);
        window.store8(8001, 7);
    }
    {
        os::BufferCache::WriteWindow window(buf, ref);
        auto entry = rig.rio->entryFor(page);
        ASSERT_TRUE(entry.has_value());
        EXPECT_EQ(entry->state, core::RegistryLayout::kStateChanging);
        EXPECT_NE(entry->shadowAddr, 0u);
        window.store8(8000, 1);
    }
    auto entry = rig.rio->entryFor(page);
    EXPECT_EQ(entry->state, core::RegistryLayout::kStateActive);
    EXPECT_EQ(entry->shadowAddr, 0u);
    buf.brelse(ref);
}

namespace
{

/** Crashes the machine at the first Commit protocol step — i.e. in
 *  endWrite after size/checksum/shadow:=0 are stored but before the
 *  state flips back to Active (the commit window). */
class CommitCrasher final : public core::RioProtocolObserver
{
  public:
    explicit CommitCrasher(sim::Machine &machine) : machine_(machine)
    {
    }

    bool fired() const { return fired_; }

    void
    onProtocolStep(Step step, Addr) override
    {
        if (fired_ || step != Step::Commit)
            return;
        fired_ = true;
        machine_.crash(sim::CrashCause::KernelPanic,
                       "commit-window crash");
    }

  private:
    sim::Machine &machine_;
    bool fired_ = false;
};

} // namespace

TEST(RioShadow, CrashInCommitWindowIsRecoverableFromThePageItself)
{
    // The endWrite store order is size, checksum, shadow := 0,
    // state := Active. A crash between the shadow clear and the
    // flip leaves a Changing entry with no shadow — but the update
    // itself is complete (closePage already ran), so the page
    // matches the entry checksum and the hardened restore must
    // recover it via the physAddr fallback. The trusting policy is
    // shadow-or-bust and must give the entry up.
    RioRig rig(os::ProtectionMode::Off);
    auto &buf = rig.kernel->bufferCache();
    auto ref = buf.bread(1, rig.kernel->ufs().geometry().itStart);
    const Addr page = buf.pageAddr(ref);
    {
        // Dirty the block first: only dirty metadata is shadowed.
        os::BufferCache::WriteWindow window(buf, ref);
        window.store8(8001, 7);
    }

    CommitCrasher crasher(rig.machine);
    rig.rio->setProtocolObserver(&crasher);
    bool crashed = false;
    try {
        os::BufferCache::WriteWindow window(buf, ref);
        window.store8(8000, 1);
    } catch (const sim::CrashException &crash) {
        rig.machine.noteCrash(crash.when());
        crashed = true;
    }
    rig.rio->setProtocolObserver(nullptr);
    ASSERT_TRUE(crashed);
    ASSERT_TRUE(crasher.fired());

    // The surviving image shows exactly the commit window: entry
    // still Changing, shadow already cleared, checksum current.
    auto entry = rig.rio->entryFor(page);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, core::RegistryLayout::kStateChanging);
    EXPECT_EQ(entry->shadowAddr, 0u);

    rig.rio->deactivate();
    rig.rio.reset();
    rig.kernel.reset();
    rig.machine.reset(sim::ResetKind::Warm);

    core::WarmReboot warm(rig.machine); // hardened
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.metadataFromPhysFallback, 1u)
        << "the completed update must be restored from the page";
    EXPECT_EQ(report.metadataUnrestorable, 0u);

    // Re-run the same scenario under the trusting restore: with the
    // shadow already cleared it has no source it is willing to use.
    {
        RioRig rig2(os::ProtectionMode::Off);
        auto &buf2 = rig2.kernel->bufferCache();
        auto ref2 =
            buf2.bread(1, rig2.kernel->ufs().geometry().itStart);
        {
            os::BufferCache::WriteWindow window(buf2, ref2);
            window.store8(8001, 7);
        }
        CommitCrasher crasher2(rig2.machine);
        rig2.rio->setProtocolObserver(&crasher2);
        try {
            os::BufferCache::WriteWindow window(buf2, ref2);
            window.store8(8000, 1);
        } catch (const sim::CrashException &crash) {
            rig2.machine.noteCrash(crash.when());
        }
        rig2.rio->setProtocolObserver(nullptr);
        rig2.rio->deactivate();
        rig2.rio.reset();
        rig2.kernel.reset();
        rig2.machine.reset(sim::ResetKind::Warm);

        core::WarmReboot trusting(rig2.machine,
                                  core::RestorePolicy::trusting());
        auto trustingReport = trusting.dumpAndRestoreMetadata();
        EXPECT_EQ(trustingReport.metadataUnrestorable, 1u)
            << "trusting is shadow-or-bust in the commit window";
    }
}

TEST(RioRegistry, ParserSkipsCorruptEntries)
{
    RioRig rig(os::ProtectionMode::Off);
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/p", os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 1);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    auto clean = core::parseRegistry(rig.machine.mem().image(),
                                     rig.machine.mem());
    EXPECT_GT(clean.entries.size(), 0u);
    EXPECT_EQ(clean.corruptEntries, 0u);

    // Scribble one live entry's physAddr field: the parser must
    // reject exactly that entry.
    const auto &reg =
        rig.machine.mem().region(sim::RegionKind::Registry);
    for (u64 index = 0;; ++index) {
        const Addr base =
            reg.base + index * core::RegistryLayout::kEntrySize;
        u32 magic;
        std::memcpy(&magic, rig.machine.mem().raw() + base, 4);
        if (magic == core::RegistryLayout::kMagic) {
            const u64 garbage = 0x1357;
            std::memcpy(rig.machine.mem().raw() + base +
                            core::RegistryLayout::kOffPhysAddr,
                        &garbage, 8);
            break;
        }
    }
    auto damaged = core::parseRegistry(rig.machine.mem().image(),
                                       rig.machine.mem());
    EXPECT_EQ(damaged.corruptEntries, 1u);
    EXPECT_EQ(damaged.entries.size(), clean.entries.size() - 1);
}

TEST(RioRegistry, ProtectionOverheadIsSmall)
{
    // Section 4's claim: protection adds essentially no overhead.
    auto run = [&](os::ProtectionMode mode) {
        RioRig rig(mode, /*checksums=*/false);
        auto &vfs = rig.kernel->vfs();
        const SimNs start = rig.machine.clock().now();
        std::vector<u8> data(32 * 1024, 0x5a);
        for (int i = 0; i < 50; ++i) {
            auto fd = vfs.open(rig.proc, "/f" + std::to_string(i),
                               os::OpenFlags::writeOnly());
            rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
            rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
        }
        return static_cast<double>(rig.machine.clock().now() - start);
    };
    const double off = run(os::ProtectionMode::Off);
    const double on = run(os::ProtectionMode::VmTlb);
    // The paper's own Table 2 shows Rio-with-protection ~4% slower
    // than Rio-without on the metadata-heavy cp+rm (25s vs 24s);
    // bound the same delta at 10% on this write-only microbenchmark.
    EXPECT_LT(on, off * 1.10);
}
