/**
 * @file
 * riolint behaves as specified: every rule fires on its known-bad
 * fixture, annotations suppress without hiding, and the live tree
 * carries zero unannotated violations — the same gate CI applies.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint.hh"

namespace
{

using riolint::Finding;
using riolint::Rule;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<Finding>
lintFixture(const std::string &name)
{
    const std::string path =
        std::string(RIO_SOURCE_ROOT) + "/tests/riolint_fixtures/" +
        name;
    return riolint::lintSource("tests/riolint_fixtures/" + name,
                               readFile(path));
}

int
countRule(const std::vector<Finding> &findings, Rule rule,
          bool allowed = false)
{
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(), [&](const Finding &f) {
            return f.rule == rule && f.allowed == allowed;
        }));
}

TEST(Riolint, R1FiresOnUncheckedStores)
{
    const auto findings = lintFixture("bad_r1.cc");
    EXPECT_GE(countRule(findings, Rule::R1CheckedStore), 4)
        << "raw(), memcpy, memset and hostSector() must all be "
           "flagged";
}

TEST(Riolint, R2FiresOnHostEntropy)
{
    const auto findings = lintFixture("bad_r2.cc");
    // rand(), system_clock and time() are three distinct findings.
    EXPECT_GE(countRule(findings, Rule::R2Determinism), 3);
}

TEST(Riolint, R3FiresOnInvertedLockOrder)
{
    const auto findings = lintFixture("bad_r3.cc");
    ASSERT_EQ(countRule(findings, Rule::R3LockOrder), 1);
    for (const Finding &f : findings) {
        if (f.rule == Rule::R3LockOrder) {
            EXPECT_NE(f.message.find("fsLock_"), std::string::npos);
        }
    }
}

TEST(Riolint, R3AcceptsCanonicalOrder)
{
    const auto findings = riolint::lintSource("src/os/good.cc", R"(
void Ufs::goodNesting() {
    LockTable::Guard outer(locks_, fsLock_);
    {
        LockTable::Guard inner(locks_, bufLock_);
    }
    // bufLock_ released by scope exit: re-acquiring is fine.
    LockTable::Guard again(locks_, bufLock_);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R3LockOrder), 0);
}

TEST(Riolint, R4FiresOnDroppedResults)
{
    const auto findings = lintFixture("bad_r4.cc");
    // Missing [[nodiscard]] + two dropped call sites.
    EXPECT_EQ(countRule(findings, Rule::R4ErrorFlow), 3);
}

TEST(Riolint, R4AcceptsConsumedResults)
{
    const auto findings = riolint::lintSource("src/os/good.cc", R"(
[[nodiscard]] OsStatus flushQuietly(Dev dev);
void carefulCaller(Dev dev) {
    const auto status = flushQuietly(dev);
    (void)flushQuietly(dev);
    if (flushQuietly(dev) != OsStatus::Ok)
        return;
}
)");
    EXPECT_EQ(countRule(findings, Rule::R4ErrorFlow), 0);
}

TEST(Riolint, R5FiresOutsideProtocolEntryPoints)
{
    const auto findings = lintFixture("bad_r5.cc");
    EXPECT_EQ(countRule(findings, Rule::R5RegistryMutation), 1);
}

TEST(Riolint, R5AcceptsProtocolEntryPointsInRio)
{
    const auto findings = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::setDirty(Addr page, bool dirty) {
    writeEntryField32(entryIndexFor(page), kOffDirty, dirty);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R5RegistryMutation), 0);
}

TEST(Riolint, R6FiresOnProtocolTypestateViolations)
{
    const auto findings = lintFixture("bad_r6.cc");
    // Write without a window, flip before close, window left open,
    // and an unmatched closePage: four distinct findings.
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 4);
}

TEST(Riolint, R6AcceptsTheRealProtocolIncludingTheHandoff)
{
    // install's single window, plus the sanctioned cross-function
    // handoff: beginWrite leaves the data page open, endWrite closes
    // it before committing in its own registry window.
    const auto findings = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::install(Addr page, u64 index) {
    openPage(registryPageOf(index));
    writeEntryField32(index, L::kOffMagic, L::kMagic);
    writeEntryField32(index, L::kOffState, L::kStateActive);
    closePage(registryPageOf(index));
}
void RioSystem::beginWrite(Addr page, u64 index) {
    openPage(registryPageOf(index));
    writeEntryField32(index, L::kOffState, L::kStateChanging);
    closePage(registryPageOf(index));
    openPage(page);
}
void RioSystem::endWrite(Addr page, u64 index) {
    closePage(page);
    openPage(registryPageOf(index));
    writeEntryField64(index, L::kOffShadow, 0);
    writeEntryField32(index, L::kOffState, L::kStateActive);
    closePage(registryPageOf(index));
}
)");
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 0);
}

TEST(Riolint, R6IgnoresInterfaceStubs)
{
    // A no-op endWrite override (e.g. the null CacheGuard) never
    // touches the protocol and must not trip the inherited-window
    // convention.
    const auto findings = riolint::lintSource("src/os/guard.hh", R"(
class NullGuard {
    void beginWrite(Addr) override {}
    void endWrite(Addr, u32) override {}
};
)");
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 0);
}

TEST(Riolint, AnnotationSuppressesButStillReports)
{
    const auto findings = lintFixture("clean_allowed.cc");
    EXPECT_EQ(countRule(findings, Rule::R1CheckedStore, false), 0);
    ASSERT_EQ(countRule(findings, Rule::R1CheckedStore, true), 1);
    for (const Finding &f : findings) {
        if (f.allowed) {
            EXPECT_NE(f.reason.find("fixture"), std::string::npos);
        }
    }
}

TEST(Riolint, AnnotationOnSameLineWorks)
{
    const auto findings = riolint::lintSource("src/os/x.cc", R"(
void f(u8 *p) {
    memset(p, 0, 8); // riolint:allow(R1) same-line form.
}
)");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(findings[0].allowed);
}

TEST(Riolint, WhitelistedPathsAreExempt)
{
    const auto findings = riolint::lintSource(
        "src/sim/membus.cc", "void f(u8 *p) { memcpy(p, p, 8); }");
    EXPECT_EQ(findings.size(), 0u);
}

TEST(Riolint, LiveTreeHasNoUnannotatedViolations)
{
    const riolint::Report report =
        riolint::lintTree(RIO_SOURCE_ROOT);
    EXPECT_EQ(report.violations(), 0) << report.text();
    // The fault injectors and DMA path carry annotated exemptions;
    // if this drops to zero the allow machinery is dead.
    EXPECT_GT(report.allowed(), 0);
}

TEST(Riolint, JsonReportCarriesPerDirectoryCounts)
{
    const riolint::Report report =
        riolint::lintTree(RIO_SOURCE_ROOT);
    const std::string json = report.json();
    EXPECT_NE(json.find("\"rules\""), std::string::npos);
    EXPECT_NE(json.find("\"directories\""), std::string::npos);
    EXPECT_NE(json.find("\"src/fault\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
}

} // namespace
