/**
 * @file
 * riolint behaves as specified: every rule fires on its known-bad
 * fixture, annotations suppress without hiding, and the live tree
 * carries zero unannotated violations — the same gate CI applies.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "lint.hh"

namespace
{

using riolint::Finding;
using riolint::Rule;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<Finding>
lintFixture(const std::string &name)
{
    const std::string path =
        std::string(RIO_SOURCE_ROOT) + "/tests/riolint_fixtures/" +
        name;
    return riolint::lintSource("tests/riolint_fixtures/" + name,
                               readFile(path));
}

int
countRule(const std::vector<Finding> &findings, Rule rule,
          bool allowed = false)
{
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(), [&](const Finding &f) {
            return f.rule == rule && f.allowed == allowed;
        }));
}

TEST(Riolint, R1FiresOnUncheckedStores)
{
    const auto findings = lintFixture("bad_r1.cc");
    EXPECT_GE(countRule(findings, Rule::R1CheckedStore), 4)
        << "raw(), memcpy, memset and hostSector() must all be "
           "flagged";
}

TEST(Riolint, R2FiresOnHostEntropy)
{
    const auto findings = lintFixture("bad_r2.cc");
    // rand(), system_clock and time() are three distinct findings.
    EXPECT_GE(countRule(findings, Rule::R2Determinism), 3);
}

TEST(Riolint, R3FiresOnInvertedLockOrder)
{
    const auto findings = lintFixture("bad_r3.cc");
    ASSERT_EQ(countRule(findings, Rule::R3LockOrder), 1);
    for (const Finding &f : findings) {
        if (f.rule == Rule::R3LockOrder) {
            EXPECT_NE(f.message.find("fsLock_"), std::string::npos);
        }
    }
}

TEST(Riolint, R3AcceptsCanonicalOrder)
{
    const auto findings = riolint::lintSource("src/os/good.cc", R"(
// riolint:rank(fsLock_, 10)
// riolint:rank(bufLock_, 30)
void Ufs::goodNesting() {
    LockTable::Guard outer(locks_, fsLock_);
    {
        LockTable::Guard inner(locks_, bufLock_);
    }
    // bufLock_ released by scope exit: re-acquiring is fine.
    LockTable::Guard again(locks_, bufLock_);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R3LockOrder), 0);
}

TEST(Riolint, R3FlagsInterproceduralInversion)
{
    // The inversion is invisible per-function: the helper's acquire
    // only breaks the lattice through the call edge.
    const auto findings = riolint::lintSource("src/os/bad.cc", R"(
// riolint:rank(fsLock_, 10)
// riolint:rank(bufLock_, 30)
void Ufs::lockedHelper() {
    LockTable::Guard g(locks_, fsLock_);
    doWork();
}
void Ufs::caller() {
    LockTable::Guard g(locks_, bufLock_);
    lockedHelper();
}
)");
    ASSERT_EQ(countRule(findings, Rule::R3LockOrder), 1);
    for (const Finding &f : findings) {
        if (f.rule == Rule::R3LockOrder) {
            EXPECT_NE(f.message.find("via call to lockedHelper"),
                      std::string::npos)
                << f.message;
        }
    }
}

TEST(Riolint, R3RequiresRankAnnotationAtAddSites)
{
    const auto findings = riolint::lintSource("src/os/drift.cc", R"(
void Ufs::attach() {
    fsLock_ = locks_.add("filesystem", LockRank{10});
}
)");
    ASSERT_EQ(countRule(findings, Rule::R3LockOrder), 1);
    EXPECT_NE(findings[0].message.find("riolint:rank"),
              std::string::npos);
}

TEST(Riolint, R3FlagsRankAnnotationDrift)
{
    // The annotation says 10 but the code registers 20: the lattice
    // the linter checks would no longer be the one the runtime
    // lockdep enforces.
    const auto findings = riolint::lintSource("src/os/drift.cc", R"(
void Ufs::attach() {
    // riolint:rank(fsLock_, 10)
    fsLock_ = locks_.add("filesystem", LockRank{20});
}
)");
    EXPECT_EQ(countRule(findings, Rule::R3LockOrder), 1);
}

TEST(Riolint, R4FiresOnDroppedResults)
{
    const auto findings = lintFixture("bad_r4.cc");
    // Missing [[nodiscard]] + two dropped call sites.
    EXPECT_EQ(countRule(findings, Rule::R4ErrorFlow), 3);
}

TEST(Riolint, R4AcceptsConsumedResults)
{
    const auto findings = riolint::lintSource("src/os/good.cc", R"(
[[nodiscard]] OsStatus flushQuietly(Dev dev);
void carefulCaller(Dev dev) {
    const auto status = flushQuietly(dev);
    (void)flushQuietly(dev);
    if (flushQuietly(dev) != OsStatus::Ok)
        return;
}
)");
    EXPECT_EQ(countRule(findings, Rule::R4ErrorFlow), 0);
}

TEST(Riolint, R4FiresOnStatementPositionChains)
{
    const auto findings = lintFixture("bad_r4_chain.cc");
    // this->, chain end, and both comma operands: four drops; the
    // consumed variants below them must stay silent.
    EXPECT_EQ(countRule(findings, Rule::R4ErrorFlow), 4);
}

TEST(Riolint, R5FiresOutsideProtocolEntryPoints)
{
    const auto findings = lintFixture("bad_r5.cc");
    EXPECT_EQ(countRule(findings, Rule::R5RegistryMutation), 1);
}

TEST(Riolint, R5AcceptsProtocolEntryPointsInRio)
{
    const auto findings = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::setDirty(Addr page, bool dirty) {
    writeEntryField32(entryIndexFor(page), kOffDirty, dirty);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R5RegistryMutation), 0);
}

TEST(Riolint, R6FiresOnProtocolTypestateViolations)
{
    const auto findings = lintFixture("bad_r6.cc");
    // Write without a window, flip before close, window left open,
    // and an unmatched closePage: four distinct findings.
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 4);
}

TEST(Riolint, R6AcceptsTheRealProtocolIncludingTheHandoff)
{
    // install's single window, plus the sanctioned cross-function
    // handoff: beginWrite leaves the data page open, endWrite closes
    // it before committing in its own registry window.
    const auto findings = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::install(Addr page, u64 index) {
    openPage(registryPageOf(index));
    writeEntryField32(index, L::kOffMagic, L::kMagic);
    writeEntryField32(index, L::kOffState, L::kStateActive);
    closePage(registryPageOf(index));
}
void RioSystem::beginWrite(Addr page, u64 index) {
    openPage(registryPageOf(index));
    writeEntryField32(index, L::kOffState, L::kStateChanging);
    closePage(registryPageOf(index));
    openPage(page);
}
void RioSystem::endWrite(Addr page, u64 index) {
    closePage(page);
    openPage(registryPageOf(index));
    writeEntryField64(index, L::kOffShadow, 0);
    writeEntryField32(index, L::kOffState, L::kStateActive);
    closePage(registryPageOf(index));
}
void BufferCache::diskFill(Addr page, u64 index) {
    install(page, index);
    beginWrite(page, index);
    dmaWrite(page);
    endWrite(page, index);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 0);
}

TEST(Riolint, R6TracksWindowsThroughCalls)
{
    // A window opened inside a helper and never closed leaks at the
    // outermost caller — the root function is where the finding
    // lands, since every callee's delta is visible there.
    const auto leaky = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::opener(Addr page) {
    openPage(page);
}
void RioSystem::leaky(Addr page) {
    opener(page);
}
)");
    EXPECT_EQ(countRule(leaky, Rule::R6ShadowProtocol), 1);

    // Splitting open and close across helpers is fine as long as the
    // root balances them.
    const auto balanced = riolint::lintSource("src/core/rio.cc", R"(
void RioSystem::opener(Addr page) {
    openPage(page);
}
void RioSystem::closer(Addr page) {
    closePage(page);
}
void RioSystem::balanced(Addr page) {
    opener(page);
    closer(page);
}
)");
    EXPECT_EQ(countRule(balanced, Rule::R6ShadowProtocol), 0);
}

TEST(Riolint, R6IgnoresInterfaceStubs)
{
    // A no-op endWrite override (e.g. the null CacheGuard) never
    // touches the protocol and must not trip the inherited-window
    // convention.
    const auto findings = riolint::lintSource("src/os/guard.hh", R"(
class NullGuard {
    void beginWrite(Addr) override {}
    void endWrite(Addr, u32) override {}
};
)");
    EXPECT_EQ(countRule(findings, Rule::R6ShadowProtocol), 0);
}

TEST(Riolint, R7FiresOnLockCycleAcrossFunctions)
{
    const auto findings = lintFixture("bad_r7.cc");
    ASSERT_EQ(countRule(findings, Rule::R7DeadlockCycle), 1);
    for (const Finding &f : findings) {
        if (f.rule == Rule::R7DeadlockCycle) {
            EXPECT_NE(f.message.find("aLock_"), std::string::npos);
            EXPECT_NE(f.message.find("bLock_"), std::string::npos);
        }
    }
}

TEST(Riolint, R8FiresOnCrashCapableCallsUnderBareLocks)
{
    const auto findings = lintFixture("bad_r8.cc");
    // Direct retryWrite, transitive panic, and a missing release.
    EXPECT_EQ(countRule(findings, Rule::R8CrashWhileLocked), 3);
}

TEST(Riolint, R9FiresOnJournalTypestateViolations)
{
    const auto findings = lintFixture("bad_r9.cc");
    // Append with no begin, commit with nothing open, checkpoint
    // inside an open transaction, and a transaction left open at
    // function end: four distinct findings.
    EXPECT_EQ(countRule(findings, Rule::R9JournalTx), 4);
}

TEST(Riolint, R9AcceptsTheRealTransactionOrder)
{
    // The journal's own idiom: append opens on demand and commits
    // when the transaction fills; checkpointNow seals first, then
    // checkpoints with nothing open. Declarations and qualified
    // definition names are not protocol steps.
    const auto findings = riolint::lintSource("src/os/journal.cc", R"(
void Journal::append(DevNo dev, BlockNo home, bool data) {
    if (!txOpen_)
        txBegin();
    txAppend(dev, home, data);
    if (tx_.size() >= maxTxBlocks_)
        txCommit();
}
void Journal::checkpointNow() {
    txBegin();
    txCommit();
    checkpoint();
}
)");
    EXPECT_EQ(countRule(findings, Rule::R9JournalTx), 0);
}

TEST(Riolint, R8AcceptsGuardedCrashCapableCalls)
{
    // A Guard releases via releaseQuiet on the unwind path, so a
    // crash under it is exactly what the design intends.
    const auto findings = riolint::lintSource("src/os/good.cc", R"(
void Ufs::writesUnderGuard() {
    LockTable::Guard g(locks_, fsLock_);
    retryWrite(dev_, block_);
}
)");
    EXPECT_EQ(countRule(findings, Rule::R8CrashWhileLocked), 0);
}

TEST(Riolint, AnnotationSuppressesButStillReports)
{
    const auto findings = lintFixture("clean_allowed.cc");
    EXPECT_EQ(countRule(findings, Rule::R1CheckedStore, false), 0);
    ASSERT_EQ(countRule(findings, Rule::R1CheckedStore, true), 1);
    for (const Finding &f : findings) {
        if (f.allowed) {
            EXPECT_NE(f.reason.find("fixture"), std::string::npos);
        }
    }
}

TEST(Riolint, AnnotationOnSameLineWorks)
{
    const auto findings = riolint::lintSource("src/os/x.cc", R"(
void f(u8 *p) {
    memset(p, 0, 8); // riolint:allow(R1) same-line form.
}
)");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_TRUE(findings[0].allowed);
}

TEST(Riolint, WhitelistedPathsAreExempt)
{
    const auto findings = riolint::lintSource(
        "src/sim/membus.cc", "void f(u8 *p) { memcpy(p, p, 8); }");
    EXPECT_EQ(findings.size(), 0u);
}

TEST(Riolint, LiveTreeHasNoUnannotatedViolations)
{
    const riolint::Report report =
        riolint::lintTree(RIO_SOURCE_ROOT);
    EXPECT_EQ(report.violations(), 0) << report.text();
    // The fault injectors and DMA path carry annotated exemptions;
    // if this drops to zero the allow machinery is dead.
    EXPECT_GT(report.allowed(), 0);
}

TEST(Riolint, JsonReportCarriesPerDirectoryCounts)
{
    const riolint::Report report =
        riolint::lintTree(RIO_SOURCE_ROOT);
    const std::string json = report.json();
    EXPECT_NE(json.find("\"rules\""), std::string::npos);
    EXPECT_NE(json.find("\"directories\""), std::string::npos);
    EXPECT_NE(json.find("\"src/fault\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
}

TEST(Riolint, LockGraphArtifactsDescribeTheLattice)
{
    const riolint::Report report =
        riolint::lintTree(RIO_SOURCE_ROOT);

    // DOT: all three ranked kernel locks, no red (cycle) nodes.
    EXPECT_NE(report.lockDot.find("digraph"), std::string::npos);
    EXPECT_NE(report.lockDot.find("fsLock_"), std::string::npos);
    EXPECT_NE(report.lockDot.find("ubcLock_"), std::string::npos);
    EXPECT_NE(report.lockDot.find("bufLock_"), std::string::npos);
    EXPECT_EQ(report.lockDot.find("color=red"), std::string::npos);

    // JSON: the machine-readable mirror, with an empty cycle list.
    const std::string &json = report.lockJson;
    EXPECT_NE(json.find("\"locks\""), std::string::npos);
    EXPECT_NE(json.find("\"edges\""), std::string::npos);
    EXPECT_NE(json.find("\"rank\": 30"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": []"), std::string::npos);
}

} // namespace
