/**
 * @file
 * Regression tests for the file-server client's model mirroring
 * (workload/serverclient.hh). The historical bug: the overwrite-doc
 * path updated the ModelFs oracle only on a successful write, but
 * the open had *already* truncated the real file — a failed or short
 * write left the oracle holding contents the file system no longer
 * had, and the year-end audit (which never checked sizes) could not
 * see it. These tests pin the corrected mirroring discipline and the
 * size-checking audit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rio.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/modelfs.hh"
#include "workload/script.hh"
#include "workload/serverclient.hh"

using namespace rio;

namespace
{

struct Server
{
    sim::Machine machine;
    core::RioSystem rio;
    os::Kernel kernel;

    explicit Server(u64 diskBytes = 16ull << 20)
        : machine(machineConfig(diskBytes)),
          rio(machine, rioOptions()),
          kernel(machine, os::systemPreset(
                              os::SystemPreset::RioProtected))
    {
        kernel.boot(&rio, true);
    }

    static sim::MachineConfig
    machineConfig(u64 diskBytes)
    {
        sim::MachineConfig config;
        config.physMemBytes = 16ull << 20;
        config.diskBytes = diskBytes;
        config.swapBytes = 17ull << 20;
        return config;
    }

    static core::RioOptions
    rioOptions()
    {
        core::RioOptions options;
        options.protection =
            os::systemPreset(os::SystemPreset::RioProtected)
                .protection;
        return options;
    }
};

/** Audit helper: every model file must match the vfs exactly. */
void
expectModelMatchesVfs(os::Kernel &kernel, const wl::ModelFs &model)
{
    os::Process proc(9);
    for (const auto &[path, expected] : model.files()) {
        auto st = kernel.vfs().stat(path);
        ASSERT_TRUE(st.ok()) << path;
        EXPECT_EQ(st.value().size, expected.size()) << path;
        auto fd = kernel.vfs().open(proc, path,
                                    os::OpenFlags::readOnly());
        ASSERT_TRUE(fd.ok()) << path;
        std::vector<u8> bytes(expected.size());
        auto n = kernel.vfs().read(proc, fd.value(), bytes);
        wl::tolerate(kernel.vfs().close(proc, fd.value()));
        ASSERT_TRUE(n.ok()) << path;
        EXPECT_EQ(n.value(), expected.size()) << path;
        EXPECT_EQ(bytes, expected) << path;
    }
}

} // namespace

TEST(ServerClient, OverwriteShorterKeepsModelInSync)
{
    Server server;
    wl::ServerClient::Config config;
    config.docMin = 20'000;
    config.docMax = 30'000;
    wl::ServerClient client(config, 5);
    client.createDirs(server.kernel);
    wl::ModelFs model;

    ASSERT_TRUE(client.overwriteDoc(server.kernel, model, 1));
    // Overwrite with much smaller docs: truncation must be mirrored.
    wl::ServerClient::Config small = config;
    small.docMin = 100;
    small.docMax = 200;
    wl::ServerClient shrinker(small, 6);
    ASSERT_TRUE(shrinker.overwriteDoc(server.kernel, model, 1));
    expectModelMatchesVfs(server.kernel, model);

    const auto audit = client.audit(server.kernel, model);
    EXPECT_EQ(audit.damaged, 0u);
    EXPECT_EQ(audit.intact, model.files().size());
}

/**
 * The historical divergence: fill the disk until writes fail, then
 * keep overwriting. The truncating open succeeds while the write
 * fails — the model must track what the file system actually holds
 * (an empty or short file), not the intended contents.
 */
TEST(ServerClient, FailedWriteAfterTruncatingOpenIsMirrored)
{
    Server server(4ull << 20); // Small disk so writes can fail.
    wl::ServerClient::Config config;
    config.docs = 512;
    config.docMin = 30'000;
    config.docMax = 32'768;
    wl::ServerClient client(config, 7);
    client.createDirs(server.kernel);
    wl::ModelFs model;

    u64 failures = 0;
    for (u64 doc = 0; doc < config.docs; ++doc) {
        if (!client.overwriteDoc(server.kernel, model, doc))
            ++failures;
    }
    ASSERT_GT(failures, 0u)
        << "disk never filled; the regression path was not exercised";

    // Overwrite existing docs some more now that the disk is full:
    // every one of these opens truncates, then fails to write.
    for (u64 doc = 0; doc < 32; ++doc)
        client.overwriteDoc(server.kernel, model, doc);

    // The oracle and the file system agree byte-for-byte anyway.
    expectModelMatchesVfs(server.kernel, model);
    const auto audit = client.audit(server.kernel, model);
    EXPECT_EQ(audit.damaged, 0u);
}

/** The pre-fix audit read expected.size() bytes and compared — a
 * file that *grew* past the model passed. The audit must catch it. */
TEST(ServerClient, AuditCatchesLongerRealFile)
{
    Server server;
    wl::ServerClient::Config config;
    wl::ServerClient client(config, 8);
    client.createDirs(server.kernel);
    wl::ModelFs model;
    ASSERT_TRUE(client.overwriteDoc(server.kernel, model, 0));
    ASSERT_TRUE(client.overwriteDoc(server.kernel, model, 1));

    // Corrupt: append bytes to doc 0 behind the model's back.
    os::Process vandal(3);
    const std::string path = client.docPath(0);
    auto flags = os::OpenFlags::readWrite();
    flags.append = true;
    auto fd = server.kernel.vfs().open(vandal, path, flags);
    ASSERT_TRUE(fd.ok());
    const std::vector<u8> extra(64, 0xee);
    ASSERT_TRUE(
        server.kernel.vfs().write(vandal, fd.value(), extra).ok());
    wl::tolerate(server.kernel.vfs().close(vandal, fd.value()));

    const auto audit = client.audit(server.kernel, model);
    EXPECT_EQ(audit.damaged, 1u);
    EXPECT_EQ(audit.intact, model.files().size() - 1);
}

/** A real file the model does not know about is damage too. */
TEST(ServerClient, AuditCatchesStrayFile)
{
    Server server;
    wl::ServerClient::Config config;
    wl::ServerClient client(config, 9);
    client.createDirs(server.kernel);
    wl::ModelFs model;
    ASSERT_TRUE(client.deliverMail(server.kernel, model, 0));

    os::Process vandal(4);
    auto fd = server.kernel.vfs().open(
        vandal, config.root + "/docs/stray.tex",
        os::OpenFlags::writeOnly());
    ASSERT_TRUE(fd.ok());
    const std::vector<u8> junk(128, 0x11);
    ASSERT_TRUE(
        server.kernel.vfs().write(vandal, fd.value(), junk).ok());
    wl::tolerate(server.kernel.vfs().close(vandal, fd.value()));

    const auto audit = client.audit(server.kernel, model);
    EXPECT_EQ(audit.damaged, 1u);
}

/** Mailbox rotation keeps sizes bounded and the model in sync. */
TEST(ServerClient, MailboxRotationMirrored)
{
    Server server;
    wl::ServerClient::Config config;
    config.mailboxes = 2;
    config.mailMin = 3000;
    config.mailMax = 4000;
    config.mailboxRotateBytes = 16'000;
    wl::ServerClient client(config, 10);
    client.createDirs(server.kernel);
    wl::ModelFs model;

    for (int i = 0; i < 40; ++i)
        EXPECT_TRUE(client.deliverMail(server.kernel, model, 0));
    const auto *contents = model.contents(client.mailboxPath(0));
    ASSERT_NE(contents, nullptr);
    EXPECT_LE(contents->size(), config.mailboxRotateBytes);
    expectModelMatchesVfs(server.kernel, model);
    EXPECT_EQ(client.audit(server.kernel, model).damaged, 0u);
}
