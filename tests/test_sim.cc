/**
 * @file
 * Unit tests for the simulated hardware: physical memory regions,
 * page table, TLB, the memory bus (translation, KSEG semantics,
 * protection, machine checks), the disk model, and the machine's
 * crash/reset behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "sim/machine.hh"

using namespace rio;
using namespace rio::sim;

namespace
{

MachineConfig
tinyConfig()
{
    MachineConfig config;
    config.physMemBytes = 8ull << 20;
    config.kernelTextBytes = 1ull << 20;
    config.kernelHeapBytes = 2ull << 20;
    config.bufPoolBytes = 512ull << 10;
    config.diskBytes = 16ull << 20;
    config.swapBytes = 8ull << 20;
    return config;
}

} // namespace

TEST(PhysMem, RegionsTileWithoutOverlap)
{
    PhysMem mem(tinyConfig());
    Addr cursor = 0;
    for (const Region &region : mem.regions()) {
        EXPECT_EQ(region.base, cursor);
        EXPECT_EQ(region.size % kPageSize, 0u);
        cursor = region.end();
    }
    EXPECT_LE(cursor, mem.size());
}

TEST(PhysMem, RegistrySizedForFileCachePages)
{
    PhysMem mem(tinyConfig());
    const auto &reg = mem.region(RegionKind::Registry);
    const auto &buf = mem.region(RegionKind::BufPool);
    const auto &ubc = mem.region(RegionKind::UbcPool);
    // 64 bytes per file-cache page plus the 4 shadow pages.
    EXPECT_GE(reg.size,
              (buf.pages() + ubc.pages()) * 64 + 4 * kPageSize);
}

TEST(PhysMem, RegionForFindsOwner)
{
    PhysMem mem(tinyConfig());
    const auto &heap = mem.region(RegionKind::KernelHeap);
    const Region *found = mem.regionFor(heap.base + 100);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind, RegionKind::KernelHeap);
    EXPECT_EQ(mem.regionFor(mem.size() + 10), nullptr);
}

TEST(PhysMem, ZeroAllClears)
{
    PhysMem mem(tinyConfig());
    mem.raw()[1000] = 0x42;
    mem.zeroAll();
    EXPECT_EQ(mem.raw()[1000], 0);
}

TEST(Pte, EncodeDecodeRoundTrip)
{
    for (const bool valid : {false, true}) {
        for (const bool writable : {false, true}) {
            for (const u64 pfn : {0ull, 1ull, 1023ull, 65535ull}) {
                Pte pte;
                pte.valid = valid;
                pte.writable = writable;
                pte.pfn = pfn;
                const Pte back = Pte::decode(pte.encode());
                EXPECT_EQ(back.valid, valid);
                EXPECT_EQ(back.writable, writable);
                EXPECT_EQ(back.pfn, pfn);
            }
        }
    }
}

TEST(PageTable, IdentityMapsAllButPageZero)
{
    PhysMem mem(tinyConfig());
    PageTable pt(mem);
    pt.initIdentity();
    EXPECT_FALSE(pt.read(0).valid);
    for (u64 vpn = 1; vpn < pt.numPages(); vpn += 37) {
        const Pte pte = pt.read(vpn);
        EXPECT_TRUE(pte.valid);
        EXPECT_TRUE(pte.writable);
        EXPECT_EQ(pte.pfn, vpn);
    }
}

TEST(PageTable, LivesInSimulatedMemory)
{
    PhysMem mem(tinyConfig());
    PageTable pt(mem);
    pt.initIdentity();
    // Corrupt a PTE through raw memory; the walker must see it.
    const auto &ptRegion = mem.region(RegionKind::PageTables);
    const u64 vpn = 5;
    u64 word;
    std::memcpy(&word, mem.raw() + ptRegion.base + vpn * 8, 8);
    word &= ~Pte::kValidBit;
    std::memcpy(mem.raw() + ptRegion.base + vpn * 8, &word, 8);
    EXPECT_FALSE(pt.read(vpn).valid);
}

TEST(Tlb, CachesAndInvalidates)
{
    Tlb tlb;
    Pte pte;
    pte.valid = true;
    pte.pfn = 7;
    EXPECT_EQ(tlb.lookup(7), nullptr);
    tlb.fill(7, pte);
    ASSERT_NE(tlb.lookup(7), nullptr);
    EXPECT_EQ(tlb.lookup(7)->pfn, 7u);
    tlb.invalidatePage(7);
    EXPECT_EQ(tlb.lookup(7), nullptr);
}

TEST(Tlb, FlushAllDropsEverything)
{
    Tlb tlb;
    Pte pte;
    pte.valid = true;
    for (u64 vpn = 0; vpn < 50; ++vpn)
        tlb.fill(vpn, pte);
    tlb.flushAll();
    for (u64 vpn = 0; vpn < 50; ++vpn)
        EXPECT_EQ(tlb.lookup(vpn), nullptr);
}

class MemBusTest : public ::testing::Test
{
  protected:
    MemBusTest() : machine_(tinyConfig())
    {
        machine_.pageTable().initIdentity();
    }

    Machine machine_;
};

TEST_F(MemBusTest, ScalarRoundTripAllWidths)
{
    auto &bus = machine_.bus();
    const Addr base = machine_.mem().region(RegionKind::KernelHeap).base;
    bus.store8(base + 0, 0xab);
    bus.store16(base + 2, 0xcdef);
    bus.store32(base + 4, 0x12345678);
    bus.store64(base + 8, 0x0123456789abcdefull);
    EXPECT_EQ(bus.load8(base + 0), 0xab);
    EXPECT_EQ(bus.load16(base + 2), 0xcdef);
    EXPECT_EQ(bus.load32(base + 4), 0x12345678u);
    EXPECT_EQ(bus.load64(base + 8), 0x0123456789abcdefull);
}

TEST_F(MemBusTest, MachineCheckOnOutOfRangeAddress)
{
    EXPECT_THROW(machine_.bus().load64(machine_.mem().size() + 64),
                 CrashException);
    EXPECT_EQ(machine_.bus().stats().machineChecks, 1u);
}

TEST_F(MemBusTest, MachineCheckOnNullPage)
{
    // Page 0 is never mapped: low wild pointers trap.
    EXPECT_THROW(machine_.bus().store64(0x100, 1), CrashException);
}

TEST_F(MemBusTest, MachineCheckOnWildPointer)
{
    EXPECT_THROW(machine_.bus().store64(0x7fffabcdeff8ull, 1),
                 CrashException);
}

TEST_F(MemBusTest, KsegBypassesTlbByDefault)
{
    auto &bus = machine_.bus();
    const Addr pa = machine_.mem().region(RegionKind::UbcPool).base;
    // Protect the page; a KSEG store must bypass that protection
    // while the CPU does not map KSEG through the TLB.
    machine_.pageTable().setWritable(pa >> kPageShift, false);
    EXPECT_NO_THROW(bus.store64(physToKseg(pa), 0x77));
    EXPECT_EQ(bus.load64(physToKseg(pa)), 0x77u);
}

TEST_F(MemBusTest, AboxBitForcesKsegThroughProtection)
{
    auto &bus = machine_.bus();
    const Addr pa = machine_.mem().region(RegionKind::UbcPool).base;
    machine_.pageTable().setWritable(pa >> kPageShift, false);
    machine_.tlb().flushAll();
    machine_.cpu().setMapKsegThroughTlb(true);
    EXPECT_THROW(bus.store64(physToKseg(pa), 0x77), CrashException);
    EXPECT_EQ(bus.stats().protectionFaults, 1u);
    // Reads are still fine.
    EXPECT_NO_THROW(bus.load64(physToKseg(pa)));
}

TEST_F(MemBusTest, ProtectionFaultOnReadOnlyPage)
{
    auto &bus = machine_.bus();
    const Addr pa = machine_.mem().region(RegionKind::BufPool).base;
    machine_.pageTable().setWritable(pa >> kPageShift, false);
    machine_.tlb().flushAll();
    EXPECT_THROW(bus.store8(pa, 1), CrashException);
    machine_.pageTable().setWritable(pa >> kPageShift, true);
    machine_.tlb().invalidatePage(pa >> kPageShift);
    EXPECT_NO_THROW(bus.store8(pa, 1));
}

TEST_F(MemBusTest, StaleTlbEntryHonoursCachedProtection)
{
    auto &bus = machine_.bus();
    const Addr pa = machine_.mem().region(RegionKind::BufPool).base;
    bus.store8(pa, 1); // Fill the TLB with a writable entry.
    machine_.pageTable().setWritable(pa >> kPageShift, false);
    // Without invalidation the stale TLB entry still allows writes —
    // which is exactly why protection changes must shoot down.
    EXPECT_NO_THROW(bus.store8(pa, 2));
    machine_.tlb().invalidatePage(pa >> kPageShift);
    EXPECT_THROW(bus.store8(pa, 3), CrashException);
}

TEST_F(MemBusTest, CorruptedPteRedirectsTranslation)
{
    auto &bus = machine_.bus();
    const Addr heap = machine_.mem().region(RegionKind::KernelHeap).base;
    const Addr text = machine_.mem().region(RegionKind::KernelText).base;
    Pte pte = machine_.pageTable().read(heap >> kPageShift);
    pte.pfn = text >> kPageShift; // Redirect heap page to text page.
    machine_.pageTable().write(heap >> kPageShift, pte);
    machine_.tlb().flushAll();
    bus.store8(heap + 5, 0x99);
    EXPECT_EQ(machine_.mem().raw()[text + 5], 0x99);
}

TEST_F(MemBusTest, BulkOpsCrossPages)
{
    auto &bus = machine_.bus();
    const Addr base =
        machine_.mem().region(RegionKind::KernelHeap).base + kPageSize -
        100;
    std::vector<u8> out(300), in(300);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<u8>(i);
    bus.writeBytes(base, in);
    bus.readBytes(base, out);
    EXPECT_EQ(in, out);
}

TEST_F(MemBusTest, CopyMovesBytesAndChargesTime)
{
    auto &bus = machine_.bus();
    const Addr heap = machine_.mem().region(RegionKind::KernelHeap).base;
    std::vector<u8> data(1000, 0x3c);
    bus.writeBytes(heap, data);
    const SimNs before = machine_.clock().now();
    bus.copy(heap + 20000, heap, 1000);
    EXPECT_GT(machine_.clock().now(), before);
    std::vector<u8> out(1000);
    bus.readBytes(heap + 20000, out);
    EXPECT_EQ(out, data);
}

namespace
{

/** Minimal policy for code-patching tests. */
class TestPolicy : public ProtectionPolicy
{
  public:
    bool
    patchCheckBlocksStore(Addr pa) const override
    {
        return pa >= blockFrom && pa < blockTo;
    }

    void onProtectionStop(Addr) override { ++stops; }

    Addr blockFrom = 0;
    Addr blockTo = 0;
    int stops = 0;
};

} // namespace

TEST_F(MemBusTest, CodePatchingBlocksConfiguredRange)
{
    auto &bus = machine_.bus();
    TestPolicy policy;
    const auto &buf = machine_.mem().region(RegionKind::BufPool);
    policy.blockFrom = buf.base;
    policy.blockTo = buf.end();
    bus.setPolicy(&policy);
    bus.setCodePatching(true);

    EXPECT_THROW(bus.store64(buf.base + 64, 1), CrashException);
    EXPECT_EQ(policy.stops, 1);
    // Outside the range, stores pass.
    const Addr heap = machine_.mem().region(RegionKind::KernelHeap).base;
    EXPECT_NO_THROW(bus.store64(heap, 1));
    // KSEG form hits the same physical check.
    EXPECT_THROW(bus.store64(physToKseg(buf.base + 128), 1),
                 CrashException);
}

TEST(DiskTest, ReadBackWhatWasWritten)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(1));
    SimClock clock;
    std::vector<u8> in(kSectorSize * 4, 0x5a), out(kSectorSize * 4);
    EXPECT_EQ(disk.write(8, 4, in, clock), DiskStatus::Ok);
    EXPECT_EQ(disk.read(8, 4, out, clock), DiskStatus::Ok);
    EXPECT_EQ(in, out);
    EXPECT_GT(clock.now(), 0u);
}

TEST(DiskTest, QueuedWriteAppliesAfterCompletion)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(2));
    SimClock clock;
    std::vector<u8> in(kSectorSize, 0x77), out(kSectorSize, 0);
    EXPECT_EQ(disk.queueWrite(100, 1, in, clock), DiskStatus::Ok);
    EXPECT_EQ(disk.queueDepth(), 1u);
    disk.drain(clock);
    EXPECT_EQ(disk.queueDepth(), 0u);
    std::memcpy(out.data(), disk.peekSector(100).data(), kSectorSize);
    EXPECT_EQ(out, in);
}

TEST(DiskTest, ReadWaitsForOverlappingQueuedWrite)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(3));
    SimClock clock;
    std::vector<u8> in(kSectorSize, 0x11), out(kSectorSize, 0);
    EXPECT_EQ(disk.queueWrite(50, 1, in, clock), DiskStatus::Ok);
    EXPECT_EQ(disk.read(50, 1, out, clock), // Observes queued data.
              DiskStatus::Ok);
    EXPECT_EQ(out, in);
}

TEST(DiskTest, CrashDropsQueuedWrites)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(4));
    SimClock clock;
    std::vector<u8> in(kSectorSize, 0x22);
    // Queue several writes; crash immediately: none had time to
    // complete fully, later ones are entirely lost.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(disk.queueWrite(200 + 10 * i, 1, in, clock),
                  DiskStatus::Ok);
    const u64 lost = disk.crashDropQueue(clock.now());
    EXPECT_EQ(lost, 5u);
    EXPECT_EQ(disk.queueDepth(), 0u);
    // The last queued target sector was never reached.
    EXPECT_NE(disk.peekSector(240)[0], 0x22);
}

TEST(DiskTest, CrashAppliesCompletedWrites)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(5));
    SimClock clock;
    std::vector<u8> in(kSectorSize, 0x33);
    EXPECT_EQ(disk.queueWrite(300, 1, in, clock), DiskStatus::Ok);
    clock.advance(3600ull * kNsPerSec); // Plenty of time to land.
    disk.crashDropQueue(clock.now());
    EXPECT_EQ(disk.peekSector(300)[0], 0x33);
}

TEST(DiskTest, TornSingleSectorWriteLeavesExactlyOneGarbageSector)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(9));
    SimClock clock;
    std::vector<u8> in(kSectorSize, 0x22);
    EXPECT_EQ(disk.queueWrite(400, 1, in, clock), DiskStatus::Ok);
    // Crash mid-transfer: the service time of any transfer is far
    // beyond 1 ns, so the write started but could not complete.
    const u64 lost = disk.crashDropQueue(clock.now() + 1);
    EXPECT_EQ(lost, 1u);
    // The target sector is garbage — neither the payload (the write
    // must not land whole) nor untouched zeros.
    const auto torn = disk.peekSector(400);
    EXPECT_NE(torn[0], 0x22);
    bool allZero = true, allPayload = true;
    for (u64 i = 0; i < kSectorSize; ++i) {
        allZero = allZero && torn[i] == 0;
        allPayload = allPayload && torn[i] == 0x22;
    }
    EXPECT_FALSE(allZero);
    EXPECT_FALSE(allPayload);
    // Exactly one sector of damage: the neighbours are untouched.
    EXPECT_EQ(disk.peekSector(399)[0], 0);
    EXPECT_EQ(disk.peekSector(401)[0], 0);
}

TEST(DiskTest, TornWriteSpanningDeviceEndClamps)
{
    CostModel costs;
    Disk disk(1 << 20, costs, support::Rng(10));
    SimClock clock;
    const SectorNo last = disk.numSectors() - 1;
    std::vector<u8> in(kSectorSize * 4, 0x44);
    // Asks for four sectors, two of which are past the device end:
    // the request clamps instead of scribbling past numSectors().
    EXPECT_EQ(disk.queueWrite(last - 1, 4, in, clock),
              DiskStatus::Ok);
    EXPECT_GE(disk.stats().clampedWrites, 1u);
    disk.crashDropQueue(clock.now() + 1);
    // Whatever tore, it tore inside the device: the last two sectors
    // hold either zeros, payload, or garbage — reading them must
    // stay in bounds (ASAN-clean) and the neighbour below the write
    // is untouched.
    (void)disk.peekSector(last);
    EXPECT_EQ(disk.peekSector(last - 2)[0], 0);

    // A fully out-of-range write is dropped outright.
    Disk disk2(1 << 20, costs, support::Rng(11));
    EXPECT_EQ(disk2.queueWrite(disk2.numSectors() + 8, 2, in, clock),
              DiskStatus::Ok);
    EXPECT_EQ(disk2.queueDepth(), 0u);
    EXPECT_GE(disk2.stats().clampedWrites, 1u);
    EXPECT_EQ(disk2.crashDropQueue(clock.now() + 1), 0u);
}

TEST(DiskTest, SequentialFasterThanRandom)
{
    CostModel costs;
    Disk disk(64 << 20, costs, support::Rng(6));
    SimClock seqClock, rndClock;
    std::vector<u8> buf(kSectorSize * 16);
    Disk disk2(64 << 20, costs, support::Rng(6));
    for (int i = 0; i < 50; ++i)
        (void)disk.read(1000 + i * 16, 16, buf, seqClock);
    support::Rng rng(7);
    for (int i = 0; i < 50; ++i)
        (void)disk2.read(rng.below(100000), 16, buf, rndClock);
    EXPECT_LT(seqClock.now(), rndClock.now() / 3);
}

TEST(DiskTest, OverlapReducesVisibleTime)
{
    CostModel costs;
    Disk a(1 << 20, costs, support::Rng(8));
    Disk b(1 << 20, costs, support::Rng(8));
    SimClock ca, cb;
    std::vector<u8> buf(kSectorSize);
    (void)a.read(500, 1, buf, ca);
    (void)b.read(500, 1, buf, cb, /*overlapNs=*/1ull << 62);
    EXPECT_GT(ca.now(), 0u);
    EXPECT_EQ(cb.now(), 0u);
}

TEST(MachineTest, CrashThrowsAndCountsOnce)
{
    Machine machine(tinyConfig());
    EXPECT_THROW(machine.crash(CrashCause::KernelPanic, "boom"),
                 CrashException);
    EXPECT_TRUE(machine.crashed());
    EXPECT_EQ(machine.crashCount(), 1u);
    machine.noteCrash(machine.clock().now()); // Idempotent.
    EXPECT_EQ(machine.crashCount(), 1u);
}

TEST(MachineTest, WarmResetPreservesMemory)
{
    Machine machine(tinyConfig());
    const Addr probe =
        machine.mem().region(RegionKind::UbcPool).base + 128;
    machine.mem().raw()[probe] = 0x66;
    machine.reset(ResetKind::Warm);
    EXPECT_EQ(machine.mem().raw()[probe], 0x66);
    // But the firmware scribbles low memory (page 0 area).
    EXPECT_EQ(machine.mem().raw()[100], 0xdb);
}

TEST(MachineTest, ColdResetClearsMemory)
{
    Machine machine(tinyConfig());
    const Addr probe =
        machine.mem().region(RegionKind::UbcPool).base + 128;
    machine.mem().raw()[probe] = 0x66;
    machine.reset(ResetKind::Cold);
    EXPECT_EQ(machine.mem().raw()[probe], 0);
}

TEST(MachineTest, PcStyleHardwareLosesMemoryEvenOnWarmReset)
{
    MachineConfig config = tinyConfig();
    config.memorySurvivesReset = false;
    Machine machine(config);
    const Addr probe =
        machine.mem().region(RegionKind::UbcPool).base + 128;
    machine.mem().raw()[probe] = 0x66;
    machine.reset(ResetKind::Warm);
    EXPECT_EQ(machine.mem().raw()[probe], 0);
}

TEST(MachineTest, CrashCauseNamesDistinct)
{
    std::set<std::string> names;
    for (int cause = 0; cause < 6; ++cause)
        names.insert(crashCauseName(static_cast<CrashCause>(cause)));
    EXPECT_EQ(names.size(), 6u);
}

TEST(MachineTest, SwapMustHoldMemoryDump)
{
    MachineConfig config = tinyConfig();
    config.swapBytes = config.physMemBytes / 2;
    EXPECT_THROW(Machine machine(config), std::runtime_error);
}
