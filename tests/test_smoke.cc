/**
 * @file
 * End-to-end smoke tests: boot a kernel, do file work, crash it,
 * warm-reboot it. These cover the whole stack and run first; the
 * per-module suites dig into details.
 */

#include <gtest/gtest.h>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

sim::MachineConfig
smallMachine(u64 seed = 1)
{
    sim::MachineConfig config;
    config.physMemBytes = 16ull << 20;
    config.kernelHeapBytes = 4ull << 20;
    config.bufPoolBytes = 1ull << 20;
    config.diskBytes = 32ull << 20;
    config.swapBytes = 16ull << 20;
    config.seed = seed;
    return config;
}

} // namespace

TEST(Smoke, BootFormatsAndMounts)
{
    sim::Machine machine(smallMachine());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::UfsDefault));
    kernel.boot(nullptr, true);
    EXPECT_TRUE(kernel.ufs().mounted());
    EXPECT_GT(kernel.ufs().freeBlocks(), 0u);
}

TEST(Smoke, WriteReadRoundTrip)
{
    sim::Machine machine(smallMachine());
    os::Kernel kernel(machine,
                      os::systemPreset(os::SystemPreset::UfsDefault));
    kernel.boot(nullptr, true);
    auto &vfs = kernel.vfs();
    os::Process proc(1);

    ASSERT_TRUE(vfs.mkdir("/dir").ok());
    auto fd = vfs.open(proc, "/dir/hello", os::OpenFlags::writeOnly());
    ASSERT_TRUE(fd.ok());
    std::vector<u8> data(20000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 13);
    ASSERT_TRUE(vfs.write(proc, fd.value(), data).ok());
    ASSERT_TRUE(vfs.close(proc, fd.value()).ok());

    auto rfd = vfs.open(proc, "/dir/hello", os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    std::vector<u8> back(data.size());
    auto n = vfs.read(proc, rfd.value(), back);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), data.size());
    EXPECT_EQ(back, data);
}

TEST(Smoke, RioSurvivesCrash)
{
    sim::Machine machine(smallMachine());
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);

    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    core::RioSystem rio(machine, options);

    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(&rio, true);
    kernel->fsDisk().resetStats(); // Ignore mkfs/mount-marker writes.

    os::Process proc(1);
    auto &vfs = kernel->vfs();
    std::vector<u8> data(50000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 7 + 1);

    ASSERT_TRUE(vfs.mkdir("/work").ok());
    auto fd = vfs.open(proc, "/work/file", os::OpenFlags::writeOnly());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs.write(proc, fd.value(), data).ok());
    ASSERT_TRUE(vfs.close(proc, fd.value()).ok());

    // Nothing was written to the disk by Rio.
    EXPECT_EQ(kernel->fsDisk().stats().sectorsWritten, 0u);

    // Crash without any sync.
    try {
        machine.crash(sim::CrashCause::KernelPanic, "test crash");
        FAIL() << "crash must throw";
    } catch (const sim::CrashException &) {
    }

    rio.deactivate();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_GT(report.metadataRestored, 0u);

    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);
    EXPECT_GT(report.dataPagesRestored, 0u);
    EXPECT_EQ(report.staleInodes, 0u);

    auto rfd = rebooted.vfs().open(proc, "/work/file",
                                   os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    std::vector<u8> back(data.size());
    auto n = rebooted.vfs().read(proc, rfd.value(), back);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), data.size());
    EXPECT_EQ(back, data);
}

TEST(Smoke, DiskSystemLosesUnsyncedDataAfterCrash)
{
    sim::Machine machine(smallMachine());
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::UfsDelayAll);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(nullptr, true);

    os::Process proc(1);
    auto &vfs = kernel->vfs();
    std::vector<u8> data(8192, 0x5a);
    auto fd = vfs.open(proc, "/lost", os::OpenFlags::writeOnly());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(vfs.write(proc, fd.value(), data).ok());
    ASSERT_TRUE(vfs.close(proc, fd.value()).ok());

    try {
        machine.crash(sim::CrashCause::KernelPanic, "test crash");
    } catch (const sim::CrashException &) {
    }
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    os::Kernel rebooted(machine, config);
    rebooted.boot(nullptr, false);
    // fsck ran (the fs was dirty) and the delayed data never made it.
    ASSERT_TRUE(rebooted.lastFsck().has_value());
    auto st = rebooted.vfs().stat("/lost");
    EXPECT_FALSE(st.ok()); // The create was delayed too.
}
