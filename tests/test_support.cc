/**
 * @file
 * Unit tests for rio::support: the deterministic RNG, checksums,
 * Result, and helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/checksum.hh"
#include "support/errors.hh"
#include "support/log.hh"
#include "support/rng.hh"
#include "support/types.hh"

using namespace rio;
using support::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const u64 value = rng.between(5, 8);
        EXPECT_GE(value, 5u);
        EXPECT_LE(value, 8u);
        sawLo |= value == 5;
        sawHi |= value == 8;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BetweenDegenerateRange)
{
    Rng rng(13);
    EXPECT_EQ(rng.between(42, 42), 42u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(19);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.real();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, FillCoversAllBytes)
{
    Rng rng(29);
    std::vector<u8> buffer(4096, 0);
    rng.fill(buffer);
    std::set<u8> seen(buffer.begin(), buffer.end());
    EXPECT_GT(seen.size(), 200u); // All byte values should appear.
}

TEST(Rng, FillOddSizes)
{
    Rng rng(31);
    for (std::size_t n : {0u, 1u, 3u, 7u, 9u, 15u}) {
        std::vector<u8> buffer(n, 0);
        rng.fill(buffer); // Must not crash or overrun.
    }
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(37);
    const double weights[] = {0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.weighted(weights), 1u);
}

TEST(Rng, WeightedRoughProportions)
{
    Rng rng(41);
    const double weights[] = {1.0, 3.0};
    int counts[2] = {0, 0};
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.weighted(weights)];
    EXPECT_NEAR(static_cast<double>(counts[1]) / trials, 0.75, 0.02);
}

TEST(Rng, ForkDecorrelates)
{
    Rng parent(43);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 4);
}

TEST(Checksum, NeverZero)
{
    std::vector<u8> zeros(8192, 0);
    EXPECT_NE(support::checksum32(zeros), 0u);
    EXPECT_NE(support::checksum32(std::span<const u8>{}), 0u);
}

TEST(Checksum, SensitiveToSingleBit)
{
    std::vector<u8> data(4096, 0xaa);
    const u32 before = support::checksum32(data);
    data[1234] ^= 1;
    EXPECT_NE(support::checksum32(data), before);
}

TEST(Checksum, SensitiveToByteSwap)
{
    std::vector<u8> data(64, 0);
    data[3] = 0x11;
    data[40] = 0x22;
    const u32 before = support::checksum32(data);
    std::swap(data[3], data[40]);
    EXPECT_NE(support::checksum32(data), before);
}

TEST(Checksum, DeterministicAcrossCalls)
{
    std::vector<u8> data(512, 0x5c);
    EXPECT_EQ(support::checksum32(data), support::checksum32(data));
}

TEST(Result, ValueRoundTrip)
{
    support::Result<int> ok(42);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);
    EXPECT_EQ(ok.status(), support::OsStatus::Ok);
}

TEST(Result, ErrorCarriesStatus)
{
    support::Result<int> err(support::OsStatus::NoEnt);
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.status(), support::OsStatus::NoEnt);
}

TEST(Result, VoidSpecialization)
{
    support::Result<void> ok;
    EXPECT_TRUE(ok.ok());
    support::Result<void> err(support::OsStatus::Io);
    EXPECT_FALSE(err.ok());
}

TEST(Errors, NamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i <= static_cast<int>(support::OsStatus::RoFs);
         ++i) {
        names.insert(
            support::osStatusName(static_cast<support::OsStatus>(i)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(support::OsStatus::RoFs) + 1);
}

TEST(Helpers, RoundUpDown)
{
    using support::roundDown;
    using support::roundUp;
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
    EXPECT_EQ(roundDown(9, 8), 8u);
    EXPECT_EQ(roundDown(7, 8), 0u);
    EXPECT_TRUE(support::isPowerOfTwo(8192));
    EXPECT_FALSE(support::isPowerOfTwo(0));
    EXPECT_FALSE(support::isPowerOfTwo(12));
}

// ---------------------------------------------------------------
// Logging: the campaign worker pool logs from many threads, so the
// sink must serialize whole lines (regression for interleaved
// output observed before the mutex guard).
// ---------------------------------------------------------------

namespace
{

/** RAII: restore default sink + level even if the test fails. */
struct ScopedLogCapture
{
    explicit ScopedLogCapture(std::vector<std::string> &out)
    {
        support::setLogSink(
            [&out](support::LogLevel, const std::string &message) {
                // Serialized by the log mutex; a torn or interleaved
                // message would show up as a malformed line below.
                out.push_back(message);
            });
        support::setLogLevel(support::LogLevel::Info);
    }
    ~ScopedLogCapture()
    {
        support::setLogSink(nullptr);
        support::setLogLevel(support::LogLevel::Warn);
    }
};

} // namespace

TEST(Log, EightThreadHammerProducesOnlyWholeLines)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::string> captured;
    {
        ScopedLogCapture capture(captured);
        std::vector<std::jthread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kPerThread; ++i) {
                    RIO_LOG_INFO << "thread " << t << " line " << i
                                 << " end";
                }
            });
        }
    }
    ASSERT_EQ(captured.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);

    // Every message is exactly one whole line: correct shape, every
    // (thread, i) pair seen exactly once, nothing torn or merged.
    std::set<std::pair<int, int>> seen;
    for (const std::string &message : captured) {
        int t = -1, i = -1;
        char tail[8] = {0};
        ASSERT_EQ(std::sscanf(message.c_str(),
                              "thread %d line %d %3s", &t, &i, tail),
                  3)
            << "torn line: '" << message << "'";
        EXPECT_EQ(std::string(tail), "end") << message;
        EXPECT_EQ(message, "thread " + std::to_string(t) + " line " +
                               std::to_string(i) + " end");
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kPerThread);
        EXPECT_TRUE(seen.emplace(t, i).second)
            << "duplicate line: " << message;
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(Log, LevelChangesAreSafeUnderConcurrentLogging)
{
    // TSan coverage: flip the level while other threads log; the
    // level is atomic and the sink mutex-guarded, so this must be
    // race-free (exact message count depends on timing).
    std::vector<std::string> captured;
    ScopedLogCapture capture(captured);
    std::jthread flipper([] {
        for (int i = 0; i < 200; ++i) {
            support::setLogLevel(i % 2 == 0
                                     ? support::LogLevel::Info
                                     : support::LogLevel::Warn);
        }
        support::setLogLevel(support::LogLevel::Info);
    });
    std::vector<std::jthread> loggers;
    for (int t = 0; t < 4; ++t) {
        loggers.emplace_back([] {
            for (int i = 0; i < 200; ++i)
                RIO_LOG_INFO << "level-flip " << i;
        });
    }
    loggers.clear(); // Join.
    flipper.join();
    for (const std::string &message : captured)
        EXPECT_EQ(message.rfind("level-flip ", 0), 0u) << message;
}
