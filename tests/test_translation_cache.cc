/**
 * @file
 * Tests for the MemBus last-translation cache (the checked-store
 * fast path), the VA-space bounds fix in MemBus::translate, and the
 * per-access accounting of bulk bus operations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/machine.hh"
#include "support/rng.hh"

using namespace rio;
using namespace rio::sim;

namespace
{

MachineConfig
tinyConfig()
{
    MachineConfig config;
    config.physMemBytes = 8ull << 20;
    config.kernelTextBytes = 1ull << 20;
    config.kernelHeapBytes = 2ull << 20;
    config.bufPoolBytes = 512ull << 10;
    config.diskBytes = 16ull << 20;
    config.swapBytes = 8ull << 20;
    return config;
}

Addr
heapBase(Machine &machine)
{
    return machine.mem().region(RegionKind::KernelHeap).base;
}

} // namespace

TEST(TranslationCache, RemapInvalidatesCachedTranslation)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    MemBus &bus = machine.bus();

    const Addr va = heapBase(machine);
    const u64 vpn = va >> kPageShift;
    bus.store64(va, 0x1111); // Populates TLB + translation cache.
    bus.store64(va + 8, 0x2222);

    // Remap the page to invalid and invalidate the TLB — the very
    // next store must fault, not hit a stale cached translation.
    Pte pte = machine.pageTable().read(vpn);
    pte.valid = false;
    machine.pageTable().write(vpn, pte);
    machine.tlb().invalidatePage(vpn);
    EXPECT_THROW(bus.store64(va + 16, 0x3333), CrashException);
}

TEST(TranslationCache, ProtectionChangeInvalidates)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    MemBus &bus = machine.bus();

    const Addr va = heapBase(machine);
    const u64 vpn = va >> kPageShift;
    bus.store64(va, 0xabcd);

    machine.pageTable().setWritable(vpn, false);
    machine.tlb().invalidatePage(vpn);
    EXPECT_THROW(bus.store64(va + 8, 0xef01), CrashException);
    // Reads must still go through.
    EXPECT_EQ(bus.load64(va), 0xabcdu);

    machine.pageTable().setWritable(vpn, true);
    machine.tlb().invalidatePage(vpn);
    bus.store64(va + 8, 0xef01);
    EXPECT_EQ(bus.load64(va + 8), 0xef01u);
}

TEST(TranslationCache, FlushInvalidates)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    MemBus &bus = machine.bus();

    const Addr va = heapBase(machine);
    const u64 vpn = va >> kPageShift;
    bus.store64(va, 1);

    Pte pte = machine.pageTable().read(vpn);
    pte.valid = false;
    machine.pageTable().write(vpn, pte);
    machine.tlb().flushAll();
    EXPECT_THROW(bus.load64(va), CrashException);
}

/** The cache must be invisible: a mixed op stream must produce the
 * same clock, stats, and memory with the cache on and off. */
TEST(TranslationCache, OnOffEquivalence)
{
    auto run = [](bool cacheOn) {
        Machine machine(tinyConfig());
        machine.pageTable().initIdentity();
        machine.bus().setTranslationCache(cacheOn);
        MemBus &bus = machine.bus();
        const Addr heap = heapBase(machine);
        const u64 span = 64 * kPageSize;
        support::Rng rng(99);
        u64 checksum = 0;
        u64 faults = 0;
        for (int i = 0; i < 20000; ++i) {
            const Addr va = heap + (rng.below(span) & ~7ull);
            switch (rng.below(6)) {
              case 0: bus.store64(va, rng.next()); break;
              case 1: checksum ^= bus.load64(va); break;
              case 2: {
                  std::vector<u8> buf(rng.between(1, 3 * kPageSize));
                  rng.fill(buf);
                  bus.writeBytes(va, buf);
                  break;
              }
              case 3: {
                  std::vector<u8> buf(rng.between(1, 3 * kPageSize));
                  bus.readBytes(va, buf);
                  checksum ^= buf[0];
                  break;
              }
              case 4: {
                  const u64 vpn = va >> kPageShift;
                  const bool writable = rng.chance(0.7);
                  machine.pageTable().setWritable(vpn, writable);
                  machine.tlb().invalidatePage(vpn);
                  try {
                      bus.store64(va, 7);
                  } catch (const CrashException &) {
                      ++faults;
                  }
                  machine.pageTable().setWritable(vpn, true);
                  machine.tlb().invalidatePage(vpn);
                  break;
              }
              case 5: machine.tlb().flushAll(); break;
            }
        }
        struct Summary
        {
            SimNs clock;
            u64 loads, stores, hits, misses, faults, checksum;
            bool operator==(const Summary &) const = default;
        };
        return Summary{machine.clock().now(),
                       bus.stats().loads,
                       bus.stats().stores,
                       machine.tlb().hits(),
                       machine.tlb().misses(),
                       faults,
                       checksum};
    };
    EXPECT_TRUE(run(false) == run(true));
}

/** Regression: a VA above physical memory but inside the page
 * table's VA space must translate, not machine-check. The old code
 * bounded virtual addresses against physical memory size. */
TEST(MemBusBounds, HighVirtualAddressWithinVaSpace)
{
    MachineConfig config = tinyConfig();
    const u64 physPages = config.physMemBytes >> kPageShift;
    config.vaSpacePages = physPages + 16;
    Machine machine(config);
    machine.pageTable().initIdentity();
    EXPECT_EQ(machine.pageTable().numPages(), physPages + 16);
    EXPECT_EQ(machine.pageTable().physPages(), physPages);

    // Map a high virtual page at a valid physical frame.
    const u64 highVpn = physPages + 3;
    const u64 frame = heapBase(machine) >> kPageShift;
    Pte pte;
    pte.valid = true;
    pte.writable = true;
    pte.pfn = frame;
    machine.pageTable().write(highVpn, pte);

    MemBus &bus = machine.bus();
    const Addr va = highVpn << kPageShift;
    ASSERT_GE(va, machine.mem().size()); // Beyond physical memory.
    bus.store64(va + 24, 0xfeed);        // Old code machine-checked.
    EXPECT_EQ(bus.load64(va + 24), 0xfeedu);
    // Aliases the same frame as the identity mapping.
    EXPECT_EQ(bus.load64((frame << kPageShift) + 24), 0xfeedu);

    // Beyond the VA space still machine-checks.
    const Addr beyond = machine.pageTable().numPages() << kPageShift;
    EXPECT_THROW(bus.load64(beyond), CrashException);
    // And unmapped high pages fault as invalid.
    EXPECT_THROW(bus.load64((highVpn + 1) << kPageShift),
                 CrashException);
}

TEST(MemBusBounds, DefaultVaSpaceMatchesPhysicalMemory)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    EXPECT_EQ(machine.pageTable().numPages(),
              machine.mem().numPages());
    EXPECT_THROW(machine.bus().load64(machine.mem().size()),
                 CrashException);
}

/** Fault messages are part of the campaign JSONL; keep the format. */
TEST(MemBusBounds, FaultMessageFormat)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    try {
        machine.bus().load64(0x7fff0000'00000000ull);
        FAIL() << "expected a machine check";
    } catch (const CrashException &crash) {
        // CrashException prepends the cause name to the message.
        EXPECT_STREQ(crash.what(),
                     "machine check: illegal address "
                     "0x7fff000000000000");
    }
    const u64 vpn = heapBase(machine) >> kPageShift;
    machine.pageTable().setWritable(vpn, false);
    machine.tlb().invalidatePage(vpn);
    try {
        machine.bus().store64(vpn << kPageShift, 1);
        FAIL() << "expected a protection fault";
    } catch (const CrashException &crash) {
        EXPECT_NE(std::string(crash.what()).find(
                      "write to protected address 0x"),
                  std::string::npos);
    }
}

TEST(BusAccounting, BulkOpsCountPerPageChunk)
{
    Machine machine(tinyConfig());
    machine.pageTable().initIdentity();
    MemBus &bus = machine.bus();
    const Addr heap = heapBase(machine);

    // 3 pages, page-aligned: 3 store accesses.
    std::vector<u8> buf(3 * kPageSize, 0x5a);
    bus.resetStats();
    bus.writeBytes(heap, buf);
    EXPECT_EQ(bus.stats().stores, 3u);
    EXPECT_EQ(bus.stats().bytesCopied, 3 * kPageSize);

    // Unaligned start: spans one extra page.
    bus.resetStats();
    bus.writeBytes(heap + 100, buf);
    EXPECT_EQ(bus.stats().stores, 4u);

    // Reads mirror writes.
    bus.resetStats();
    bus.readBytes(heap, buf);
    EXPECT_EQ(bus.stats().loads, 3u);

    // Copy counts one load + one store per chunk.
    bus.resetStats();
    bus.copy(heap + 8 * kPageSize, heap, 2 * kPageSize);
    EXPECT_EQ(bus.stats().loads, 2u);
    EXPECT_EQ(bus.stats().stores, 2u);

    // set() is store-only.
    bus.resetStats();
    bus.set(heap, 0xcc, kPageSize / 2);
    EXPECT_EQ(bus.stats().stores, 1u);

    // A bulk op within one page counts like a scalar access.
    bus.resetStats();
    std::vector<u8> small(16);
    bus.readBytes(heap, small);
    bus.writeBytes(heap, small);
    EXPECT_EQ(bus.stats().loads, 1u);
    EXPECT_EQ(bus.stats().stores, 1u);
}
