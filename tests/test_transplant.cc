/**
 * @file
 * Section 5's architectural claim: "If the system board fails, it
 * should be possible to move the memory board to a different system
 * without losing power or data." We simulate exactly that: the
 * machine dies, its memory board (and disks) are reseated in a
 * different chassis, and the warm reboot recovers every file there.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(u64 seed)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.seed = seed;
    return c;
}

} // namespace

TEST(Transplant, MemoryBoardMovesToAnotherChassis)
{
    const sim::MachineConfig config = machineConfig(1);
    sim::Machine failed(config);

    const os::KernelConfig kernelConfig =
        os::systemPreset(os::SystemPreset::RioProtected);
    core::RioOptions options;
    options.protection = kernelConfig.protection;
    auto rio = std::make_unique<core::RioSystem>(failed, options);
    auto kernel = std::make_unique<os::Kernel>(failed, kernelConfig);
    kernel->boot(rio.get(), true);

    os::Process proc(1);
    std::vector<u8> data(40000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 7 + 3);
    auto fd = kernel->vfs().open(proc, "/payload",
                                 os::OpenFlags::writeOnly());
    rio::wl::tolerate(kernel->vfs().write(proc, fd.value(), data));
    rio::wl::tolerate(kernel->vfs().close(proc, fd.value()));

    // The system board fails mid-flight (not even a clean panic).
    try {
        failed.crash(sim::CrashCause::MachineCheck,
                     "system board failure");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();

    // Reseat the memory board and the disks in a new chassis: same
    // geometry (the config describes the board), fresh CPU state.
    sim::Machine replacement(machineConfig(2));
    std::memcpy(replacement.mem().raw(), failed.mem().raw(),
                failed.mem().size());
    for (SectorNo s = 0; s < failed.disk().numSectors(); ++s) {
        std::memcpy(replacement.disk().hostSector(s).data(),
                    failed.disk().peekSector(s).data(),
                    sim::kSectorSize);
    }

    // Power-on in the new chassis preserves the reseated memory
    // (DEC-style hardware); run the ordinary warm reboot there.
    replacement.reset(sim::ResetKind::Warm);
    core::WarmReboot warm(replacement);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_GT(report.entriesSeen, 0u);
    core::RioSystem rio2(replacement, options);
    os::Kernel rebooted(replacement, kernelConfig);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);

    std::vector<u8> out(40000);
    auto rfd = rebooted.vfs().open(proc, "/payload",
                                   os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    ASSERT_TRUE(rebooted.vfs().read(proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
}
