/**
 * @file
 * Unit tests for the Unified Buffer Cache: page lookup/fill, the
 * KSEG-addressed write path, flush and invalidation, truncation
 * semantics, and eviction spills through the backing store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "os/ubc.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

/** In-memory backing store standing in for UFS. */
class FakeStore : public os::BackingStore
{
  public:
    u32
    fillPage(DevNo, InodeNo ino, u64 pageIdx, Addr pagePhys) override
    {
        ++fills;
        auto it = pages.find({ino, pageIdx});
        std::vector<u8> content(sim::kPageSize, 0);
        u32 valid = 0;
        if (it != pages.end()) {
            content = it->second;
            valid = sim::kPageSize;
        }
        std::memcpy(mem->raw() + pagePhys, content.data(),
                    sim::kPageSize);
        return valid;
    }

    void
    spillPage(DevNo, InodeNo ino, u64 pageIdx, Addr pagePhys,
              u32 validBytes, bool) override
    {
        ++spills;
        std::vector<u8> content(sim::kPageSize, 0);
        std::memcpy(content.data(), mem->raw() + pagePhys,
                    sim::kPageSize);
        pages[{ino, pageIdx}] = std::move(content);
        lastValid = validBytes;
    }

    sim::PhysMem *mem = nullptr;
    std::map<std::pair<InodeNo, u64>, std::vector<u8>> pages;
    int fills = 0;
    int spills = 0;
    u32 lastValid = 0;
};

class UbcTest : public ::testing::Test
{
  protected:
    UbcTest()
        : machine_(machineConfig()),
          procs_(machine_, support::Rng(1)),
          heap_(machine_, procs_), kcopy_(machine_, procs_),
          locks_(machine_, procs_),
          ubc_(machine_, procs_, heap_, kcopy_, locks_, config_)
    {
        machine_.pageTable().initIdentity();
        heap_.init();
        store_.mem = &machine_.mem();
        ubc_.init(guard_, store_);
    }

    static sim::MachineConfig
    machineConfig()
    {
        sim::MachineConfig c;
        c.physMemBytes = 8ull << 20;
        c.kernelTextBytes = 1ull << 20;
        c.kernelHeapBytes = 2ull << 20;
        c.bufPoolBytes = 256ull << 10;
        c.ubcPoolBytes = 512ull << 10; // 64 pages.
        c.diskBytes = 16ull << 20;
        c.swapBytes = 8ull << 20;
        return c;
    }

    sim::Machine machine_;
    os::KernelConfig config_;
    os::KProcTable procs_;
    os::KernelHeap heap_;
    os::KCopy kcopy_;
    os::LockTable locks_;
    os::NullCacheGuard guard_;
    FakeStore store_;
    os::Ubc ubc_;
};

} // namespace

TEST_F(UbcTest, WriteThenReadRoundTrip)
{
    auto ref = ubc_.getPage(1, 5, 0, false);
    std::vector<u8> data(1000, 0x42);
    ubc_.write(ref, 100, data, 1100);
    std::vector<u8> out(1000);
    ubc_.read(ref, 100, out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(ubc_.validBytes(ref), 1100u);
}

TEST_F(UbcTest, FreshPageIsZeroed)
{
    auto ref = ubc_.getPage(1, 6, 0, false);
    std::vector<u8> out(sim::kPageSize, 0xff);
    ubc_.read(ref, 0, out);
    for (const u8 byte : out)
        ASSERT_EQ(byte, 0);
}

TEST_F(UbcTest, FillPullsFromBackingStore)
{
    std::vector<u8> content(sim::kPageSize, 0x77);
    store_.pages[{7, 0}] = content;
    auto ref = ubc_.getPage(1, 7, 0, true);
    EXPECT_EQ(store_.fills, 1);
    std::vector<u8> out(16);
    ubc_.read(ref, 0, out);
    EXPECT_EQ(out[0], 0x77);
    EXPECT_EQ(ubc_.validBytes(ref), sim::kPageSize);
}

TEST_F(UbcTest, HitDoesNotRefill)
{
    ubc_.getPage(1, 8, 0, true);
    const int fills = store_.fills;
    ubc_.getPage(1, 8, 0, true);
    EXPECT_EQ(store_.fills, fills);
    EXPECT_GE(ubc_.stats().hits, 1u);
}

TEST_F(UbcTest, FlushFileSpillsOnlyDirtyPages)
{
    std::vector<u8> data(100, 1);
    auto a = ubc_.getPage(1, 9, 0, false);
    ubc_.write(a, 0, data, 100);
    ubc_.getPage(1, 9, 1, false); // Clean page, never written.
    ubc_.flushFile(1, 9, true);
    EXPECT_EQ(store_.spills, 1);
    EXPECT_EQ(store_.lastValid, 100u);
    EXPECT_EQ(ubc_.dirtyBytesOfFile(1, 9), 0u);
}

TEST_F(UbcTest, DirtyBytesTracksWrites)
{
    std::vector<u8> data(3000, 2);
    auto a = ubc_.getPage(1, 10, 0, false);
    ubc_.write(a, 0, data, 3000);
    EXPECT_EQ(ubc_.dirtyBytesOfFile(1, 10), 3000u);
    auto b = ubc_.getPage(1, 10, 1, false);
    ubc_.write(b, 0, data, 3000);
    EXPECT_EQ(ubc_.dirtyBytesOfFile(1, 10), 6000u);
    EXPECT_EQ(ubc_.dirtyPages(), 2u);
}

TEST_F(UbcTest, InvalidateDropsWithoutSpilling)
{
    std::vector<u8> data(100, 3);
    auto a = ubc_.getPage(1, 11, 0, false);
    ubc_.write(a, 0, data, 100);
    ubc_.invalidateFile(1, 11);
    EXPECT_EQ(store_.spills, 0);
    EXPECT_EQ(ubc_.dirtyBytesOfFile(1, 11), 0u);
    // A fresh lookup misses.
    const auto missesBefore = ubc_.stats().misses;
    ubc_.getPage(1, 11, 0, false);
    EXPECT_EQ(ubc_.stats().misses, missesBefore + 1);
}

TEST_F(UbcTest, TruncateDropsTailAndZeroesBoundary)
{
    std::vector<u8> data(sim::kPageSize, 4);
    for (u64 page = 0; page < 3; ++page) {
        auto ref = ubc_.getPage(1, 12, page, false);
        ubc_.write(ref, 0, data, sim::kPageSize);
    }
    // Truncate to 1.5 pages.
    const u64 newSize = sim::kPageSize + sim::kPageSize / 2;
    ubc_.truncateFile(1, 12, newSize);

    auto boundary = ubc_.getPage(1, 12, 1, false);
    EXPECT_EQ(ubc_.validBytes(boundary), sim::kPageSize / 2);
    std::vector<u8> out(sim::kPageSize);
    ubc_.read(boundary, 0, out);
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[sim::kPageSize / 2], 0); // Zeroed past new EOF.

    // Page 2 must be gone.
    const auto missesBefore = ubc_.stats().misses;
    ubc_.getPage(1, 12, 2, false);
    EXPECT_EQ(ubc_.stats().misses, missesBefore + 1);
}

TEST_F(UbcTest, EvictionSpillsDirtyAndPreservesContents)
{
    std::vector<u8> data(sim::kPageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i);
    auto ref = ubc_.getPage(1, 13, 0, false);
    ubc_.write(ref, 0, data, sim::kPageSize);

    // Flood the 64-page pool.
    std::vector<u8> junk(8, 9);
    for (u64 page = 0; page < 100; ++page) {
        auto r = ubc_.getPage(1, 99, page, false);
        ubc_.write(r, 0, junk, 8);
    }
    EXPECT_GT(ubc_.stats().evictions, 0u);
    EXPECT_GE(store_.spills, 1);

    // Re-read through the backing store: contents intact.
    auto again = ubc_.getPage(1, 13, 0, true);
    std::vector<u8> out(sim::kPageSize);
    ubc_.read(again, 0, out);
    EXPECT_EQ(out, data);
}

TEST_F(UbcTest, CorruptedPagePointerPanics)
{
    auto ref = ubc_.getPage(1, 14, 0, false);
    const Addr header =
        ubc_.headerArena() + static_cast<u64>(ref) * os::Ubc::kHeaderSize;
    const u64 wild = 0x123456789abcull;
    std::memcpy(machine_.mem().raw() + header + os::Ubc::kOffData,
                &wild, 8);
    EXPECT_THROW(ubc_.pagePhys(ref), sim::CrashException);
}

TEST_F(UbcTest, CorruptedIdentityPanicsOnLookup)
{
    auto ref = ubc_.getPage(1, 15, 3, false);
    const Addr header =
        ubc_.headerArena() + static_cast<u64>(ref) * os::Ubc::kHeaderSize;
    const u32 wrongIno = 999;
    std::memcpy(machine_.mem().raw() + header + os::Ubc::kOffIno,
                &wrongIno, 4);
    EXPECT_THROW(ubc_.getPage(1, 15, 3, false), sim::CrashException);
}

TEST_F(UbcTest, InvalidateAllEmptiesTheCache)
{
    for (u64 page = 0; page < 10; ++page)
        ubc_.getPage(1, 16, page, false);
    ubc_.flushAll(true);
    ubc_.invalidateAll();
    EXPECT_EQ(ubc_.dirtyPages(), 0u);
    const auto missesBefore = ubc_.stats().misses;
    ubc_.getPage(1, 16, 0, false);
    EXPECT_EQ(ubc_.stats().misses, missesBefore + 1);
}
