/**
 * @file
 * Unit and integration tests for the UFS file system: on-disk
 * format, inode and block allocation, directories, path resolution
 * (including symlinks), file data through the UBC, truncation, and
 * space accounting.
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

class UfsTest : public ::testing::Test
{
  protected:
    UfsTest() : machine_(machineConfig())
    {
        kernel_ = std::make_unique<os::Kernel>(
            machine_, os::systemPreset(os::SystemPreset::UfsDelayAll));
        kernel_->boot(nullptr, true);
    }

    static sim::MachineConfig
    machineConfig()
    {
        sim::MachineConfig c;
        c.physMemBytes = 16ull << 20;
        c.kernelHeapBytes = 4ull << 20;
        c.bufPoolBytes = 1ull << 20;
        c.diskBytes = 64ull << 20;
        c.swapBytes = 16ull << 20;
        return c;
    }

    os::Ufs &ufs() { return kernel_->ufs(); }

    sim::Machine machine_;
    std::unique_ptr<os::Kernel> kernel_;
};

} // namespace

TEST_F(UfsTest, MountReadsSaneGeometry)
{
    const auto &geo = ufs().geometry();
    EXPECT_GT(geo.totalBlocks, 0u);
    EXPECT_LT(geo.dataStart, geo.logStart);
    EXPECT_EQ(geo.logStart + geo.logBlocks, geo.totalBlocks);
    EXPECT_GT(ufs().freeBlocks(), 0u);
    EXPECT_GT(ufs().freeInodes(), 0u);
}

TEST_F(UfsTest, CreateAndLookup)
{
    auto ino = ufs().create("/hello", os::FileType::Regular);
    ASSERT_TRUE(ino.ok());
    auto found = ufs().namei("/hello");
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), ino.value());
}

TEST_F(UfsTest, CreateDuplicateFails)
{
    ASSERT_TRUE(ufs().create("/dup", os::FileType::Regular).ok());
    auto again = ufs().create("/dup", os::FileType::Regular);
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.status(), support::OsStatus::Exist);
}

TEST_F(UfsTest, LookupMissingIsNoEnt)
{
    auto missing = ufs().namei("/nope");
    EXPECT_EQ(missing.status(), support::OsStatus::NoEnt);
}

TEST_F(UfsTest, PathComponentThroughFileIsNotDir)
{
    ASSERT_TRUE(ufs().create("/plain", os::FileType::Regular).ok());
    auto bad = ufs().namei("/plain/sub");
    EXPECT_EQ(bad.status(), support::OsStatus::NotDir);
}

TEST_F(UfsTest, NameTooLongRejected)
{
    const std::string longName(os::Ufs::kNameMax + 1, 'x');
    auto bad = ufs().create("/" + longName, os::FileType::Regular);
    EXPECT_EQ(bad.status(), support::OsStatus::NameTooLong);
}

TEST_F(UfsTest, WriteReadSmallFile)
{
    auto ino = ufs().create("/small", os::FileType::Regular);
    std::vector<u8> data(100, 0x11);
    auto wrote = ufs().writeFile(ino.value(), 0, data);
    ASSERT_TRUE(wrote.ok());
    EXPECT_EQ(wrote.value(), 100u);
    std::vector<u8> out(100);
    auto got = ufs().readFile(ino.value(), 0, out);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 100u);
    EXPECT_EQ(out, data);
}

TEST_F(UfsTest, WriteReadAcrossIndirectBlocks)
{
    // > 12 direct blocks forces the indirect path (13 * 8K = 104K).
    auto ino = ufs().create("/big", os::FileType::Regular);
    const u64 size = 130 * 1024;
    std::vector<u8> data(size);
    for (std::size_t i = 0; i < size; ++i)
        data[i] = static_cast<u8>(i * 7 + (i >> 11));
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, data).ok());

    auto inode = ufs().iget(ino.value());
    ASSERT_TRUE(inode.ok());
    EXPECT_EQ(inode.value().size, size);
    EXPECT_NE(inode.value().indirect, 0u);

    std::vector<u8> out(size);
    ASSERT_TRUE(ufs().readFile(ino.value(), 0, out).ok());
    EXPECT_EQ(out, data);
}

TEST_F(UfsTest, DoubleIndirectReadWriteRoundTrip)
{
    // File blocks beyond 12 + 2048 need the double-indirect tree.
    auto ino = ufs().create("/huge", os::FileType::Regular);
    const u64 farOffset =
        (os::Ufs::kDirectBlocks + os::Ufs::kIndirectEntries + 700) *
        os::Ufs::kBlockSize;
    std::vector<u8> data(20000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 13 + 5);
    ASSERT_TRUE(ufs().writeFile(ino.value(), farOffset, data).ok());

    auto inode = ufs().iget(ino.value());
    ASSERT_TRUE(inode.ok());
    EXPECT_NE(inode.value().doubleIndirect, 0u);
    EXPECT_EQ(inode.value().size, farOffset + data.size());

    std::vector<u8> out(20000);
    ASSERT_TRUE(ufs().readFile(ino.value(), farOffset, out).ok());
    EXPECT_EQ(out, data);

    // The hole before the data reads as zeroes.
    std::vector<u8> hole(100, 0xff);
    ASSERT_TRUE(
        ufs().readFile(ino.value(), farOffset / 2, hole).ok());
    for (const u8 byte : hole)
        ASSERT_EQ(byte, 0);
}

TEST_F(UfsTest, DoubleIndirectBlocksAreFreedOnRemove)
{
    // Warm the directory first (its block never shrinks back).
    ASSERT_TRUE(ufs().create("/dd", os::FileType::Regular).ok());
    ASSERT_TRUE(ufs().remove("/dd").ok());
    const u32 freeBefore = ufs().freeBlocks();

    auto ino = ufs().create("/dd", os::FileType::Regular);
    std::vector<u8> data(os::Ufs::kBlockSize, 0x3a);
    // Two pages inside the double-indirect range, in different inner
    // blocks, plus one direct page.
    const u64 base =
        os::Ufs::kDirectBlocks + os::Ufs::kIndirectEntries;
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, data).ok());
    ASSERT_TRUE(ufs()
                    .writeFile(ino.value(),
                               base * os::Ufs::kBlockSize, data)
                    .ok());
    ASSERT_TRUE(
        ufs()
            .writeFile(ino.value(),
                       (base + os::Ufs::kIndirectEntries + 3) *
                           os::Ufs::kBlockSize,
                       data)
            .ok());
    EXPECT_LT(ufs().freeBlocks(), freeBefore);
    ASSERT_TRUE(ufs().remove("/dd").ok());
    EXPECT_EQ(ufs().freeBlocks(), freeBefore);
}

TEST_F(UfsTest, DoubleIndirectTruncatePartial)
{
    auto ino = ufs().create("/part", os::FileType::Regular);
    std::vector<u8> data(os::Ufs::kBlockSize, 0x4b);
    const u64 base =
        os::Ufs::kDirectBlocks + os::Ufs::kIndirectEntries;
    for (u64 i = 0; i < 4; ++i) {
        ASSERT_TRUE(ufs()
                        .writeFile(ino.value(),
                                   (base + i) * os::Ufs::kBlockSize,
                                   data)
                        .ok());
    }
    // Truncate in the middle of the double-indirect range.
    const u64 keep = (base + 2) * os::Ufs::kBlockSize;
    ASSERT_TRUE(ufs().truncate(ino.value(), keep).ok());
    EXPECT_EQ(ufs().iget(ino.value()).value().size, keep);

    // Kept blocks are readable, cut blocks read as holes.
    std::vector<u8> out(100);
    ASSERT_TRUE(ufs()
                    .readFile(ino.value(),
                              (base + 1) * os::Ufs::kBlockSize, out)
                    .ok());
    EXPECT_EQ(out[0], 0x4b);

    // fsck agrees the tree is consistent.
    kernel_->shutdown();
    sim::SimClock clock;
    auto report = os::runFsck(machine_.disk(), clock, true);
    EXPECT_EQ(report.errorsFixed(), 0u);
}

TEST_F(UfsTest, FileSizeLimitEnforced)
{
    auto ino = ufs().create("/toolarge", os::FileType::Regular);
    std::vector<u8> byte(1, 0);
    auto bad =
        ufs().writeFile(ino.value(), os::Ufs::kMaxFileBytes, byte);
    EXPECT_EQ(bad.status(), support::OsStatus::TooBig);
}

TEST_F(UfsTest, SparseFileReadsZeroesInHole)
{
    auto ino = ufs().create("/sparse", os::FileType::Regular);
    std::vector<u8> tail(10, 0xee);
    // Write at 40 KB, leaving a 5-block hole.
    ASSERT_TRUE(ufs().writeFile(ino.value(), 40960, tail).ok());
    std::vector<u8> out(100, 0xff);
    auto got = ufs().readFile(ino.value(), 10000, out);
    ASSERT_TRUE(got.ok());
    for (const u8 byte : out)
        ASSERT_EQ(byte, 0);
}

TEST_F(UfsTest, OverwriteMiddleKeepsNeighbours)
{
    auto ino = ufs().create("/mid", os::FileType::Regular);
    std::vector<u8> base(30000, 0x01);
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, base).ok());
    std::vector<u8> patch(5000, 0x02);
    ASSERT_TRUE(ufs().writeFile(ino.value(), 10000, patch).ok());

    std::vector<u8> out(30000);
    ASSERT_TRUE(ufs().readFile(ino.value(), 0, out).ok());
    EXPECT_EQ(out[9999], 0x01);
    EXPECT_EQ(out[10000], 0x02);
    EXPECT_EQ(out[14999], 0x02);
    EXPECT_EQ(out[15000], 0x01);
}

TEST_F(UfsTest, RemoveFreesSpace)
{
    // Warm the parent directory so its dirent block (which never
    // shrinks back) is already allocated before we measure.
    ASSERT_TRUE(ufs().create("/temp", os::FileType::Regular).ok());
    ASSERT_TRUE(ufs().remove("/temp").ok());

    const u32 freeBefore = ufs().freeBlocks();
    const u32 inodesBefore = ufs().freeInodes();
    auto ino = ufs().create("/temp", os::FileType::Regular);
    std::vector<u8> data(100 * 1024, 0xaa);
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, data).ok());
    EXPECT_LT(ufs().freeBlocks(), freeBefore);
    ASSERT_TRUE(ufs().remove("/temp").ok());
    EXPECT_EQ(ufs().freeBlocks(), freeBefore);
    EXPECT_EQ(ufs().freeInodes(), inodesBefore);
    EXPECT_EQ(ufs().namei("/temp").status(),
              support::OsStatus::NoEnt);
}

TEST_F(UfsTest, RemoveDirectoryWithRemoveIsIsDir)
{
    ASSERT_TRUE(ufs().mkdir("/d").ok());
    EXPECT_EQ(ufs().remove("/d").status(), support::OsStatus::IsDir);
}

TEST_F(UfsTest, RmdirRequiresEmpty)
{
    ASSERT_TRUE(ufs().mkdir("/d2").ok());
    ASSERT_TRUE(ufs().create("/d2/f", os::FileType::Regular).ok());
    EXPECT_EQ(ufs().rmdir("/d2").status(),
              support::OsStatus::NotEmpty);
    ASSERT_TRUE(ufs().remove("/d2/f").ok());
    EXPECT_TRUE(ufs().rmdir("/d2").ok());
}

TEST_F(UfsTest, RmdirRootRefused)
{
    EXPECT_FALSE(ufs().rmdir("/").ok());
}

TEST_F(UfsTest, DeepDirectoryTree)
{
    std::string path;
    for (int depth = 0; depth < 8; ++depth) {
        path += "/lvl" + std::to_string(depth);
        ASSERT_TRUE(ufs().mkdir(path).ok());
    }
    auto ino = ufs().create(path + "/leaf", os::FileType::Regular);
    ASSERT_TRUE(ino.ok());
    EXPECT_TRUE(ufs().namei(path + "/leaf").ok());
}

TEST_F(UfsTest, DirectoryGrowsPastOneBlock)
{
    ASSERT_TRUE(ufs().mkdir("/many").ok());
    // 128 dirents per block; create 300 files.
    for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(ufs()
                        .create("/many/f" + std::to_string(i),
                                os::FileType::Regular)
                        .ok());
    }
    auto listing = ufs().dirList(ufs().namei("/many").value());
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.value().size(), 300u);
    EXPECT_TRUE(ufs().namei("/many/f299").ok());
}

TEST_F(UfsTest, DirentHolesAreReused)
{
    ASSERT_TRUE(ufs().mkdir("/holes").ok());
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(ufs()
                        .create("/holes/f" + std::to_string(i),
                                os::FileType::Regular)
                        .ok());
    }
    const auto dirIno = ufs().namei("/holes").value();
    const u64 sizeBefore = ufs().iget(dirIno).value().size;
    ASSERT_TRUE(ufs().remove("/holes/f3").ok());
    ASSERT_TRUE(
        ufs().create("/holes/fnew", os::FileType::Regular).ok());
    EXPECT_EQ(ufs().iget(dirIno).value().size, sizeBefore);
}

TEST_F(UfsTest, RenameMovesBetweenDirectories)
{
    ASSERT_TRUE(ufs().mkdir("/src").ok());
    ASSERT_TRUE(ufs().mkdir("/dst").ok());
    auto ino = ufs().create("/src/file", os::FileType::Regular);
    ASSERT_TRUE(ufs().rename("/src/file", "/dst/moved").ok());
    EXPECT_EQ(ufs().namei("/src/file").status(),
              support::OsStatus::NoEnt);
    EXPECT_EQ(ufs().namei("/dst/moved").value(), ino.value());
}

TEST_F(UfsTest, RenameOverwritesExistingFile)
{
    auto a = ufs().create("/ra", os::FileType::Regular);
    auto b = ufs().create("/rb", os::FileType::Regular);
    std::vector<u8> data(10, 5);
    ASSERT_TRUE(ufs().writeFile(b.value(), 0, data).ok());
    const u32 inodesBefore = ufs().freeInodes();
    ASSERT_TRUE(ufs().rename("/ra", "/rb").ok());
    EXPECT_EQ(ufs().namei("/rb").value(), a.value());
    EXPECT_EQ(ufs().freeInodes(), inodesBefore + 1); // b freed.
}

TEST_F(UfsTest, RenameDirIntoOwnSubtreeRejected)
{
    ASSERT_TRUE(ufs().mkdir("/outer").ok());
    ASSERT_TRUE(ufs().mkdir("/outer/inner").ok());
    EXPECT_EQ(ufs().rename("/outer", "/outer/inner/self").status(),
              support::OsStatus::Inval);
    // Moving a directory sideways still works.
    ASSERT_TRUE(ufs().mkdir("/other").ok());
    EXPECT_TRUE(ufs().rename("/outer/inner", "/other/moved").ok());
    EXPECT_TRUE(ufs().namei("/other/moved").ok());
}

TEST_F(UfsTest, RenameToSelfIsNoop)
{
    auto ino = ufs().create("/self", os::FileType::Regular);
    ASSERT_TRUE(ufs().rename("/self", "/self").ok());
    EXPECT_EQ(ufs().namei("/self").value(), ino.value());
}

TEST_F(UfsTest, SymlinkFollowedByNamei)
{
    ASSERT_TRUE(ufs().mkdir("/real").ok());
    auto target = ufs().create("/real/file", os::FileType::Regular);
    ASSERT_TRUE(ufs().symlink("/real/file", "/link").ok());
    auto followed = ufs().namei("/link");
    ASSERT_TRUE(followed.ok());
    EXPECT_EQ(followed.value(), target.value());
    auto raw = ufs().readlink("/link");
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw.value(), "/real/file");
}

TEST_F(UfsTest, RelativeSymlinkResolvesAgainstParent)
{
    ASSERT_TRUE(ufs().mkdir("/rel").ok());
    auto target = ufs().create("/rel/target", os::FileType::Regular);
    ASSERT_TRUE(ufs().symlink("target", "/rel/alias").ok());
    auto followed = ufs().namei("/rel/alias");
    ASSERT_TRUE(followed.ok());
    EXPECT_EQ(followed.value(), target.value());
}

TEST_F(UfsTest, SymlinkToDirectoryUsableMidPath)
{
    ASSERT_TRUE(ufs().mkdir("/dir1").ok());
    auto inner = ufs().create("/dir1/x", os::FileType::Regular);
    ASSERT_TRUE(ufs().symlink("/dir1", "/dlink").ok());
    auto followed = ufs().namei("/dlink/x");
    ASSERT_TRUE(followed.ok());
    EXPECT_EQ(followed.value(), inner.value());
}

TEST_F(UfsTest, SymlinkLoopDetected)
{
    ASSERT_TRUE(ufs().symlink("/loopB", "/loopA").ok());
    ASSERT_TRUE(ufs().symlink("/loopA", "/loopB").ok());
    EXPECT_EQ(ufs().namei("/loopA").status(),
              support::OsStatus::Loop);
}

TEST_F(UfsTest, TruncateShrinkFreesBlocksAndClamps)
{
    auto ino = ufs().create("/trunc", os::FileType::Regular);
    std::vector<u8> data(50000, 0x33);
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, data).ok());
    const u32 freeMid = ufs().freeBlocks();
    ASSERT_TRUE(ufs().truncate(ino.value(), 100).ok());
    EXPECT_GT(ufs().freeBlocks(), freeMid);
    EXPECT_EQ(ufs().iget(ino.value()).value().size, 100u);
    std::vector<u8> out(200);
    auto got = ufs().readFile(ino.value(), 0, out);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 100u);
}

TEST_F(UfsTest, TruncateGrowExtendsWithZeroes)
{
    auto ino = ufs().create("/grow", os::FileType::Regular);
    std::vector<u8> data(10, 0x44);
    ASSERT_TRUE(ufs().writeFile(ino.value(), 0, data).ok());
    ASSERT_TRUE(ufs().truncate(ino.value(), 5000).ok());
    std::vector<u8> out(5000);
    auto got = ufs().readFile(ino.value(), 0, out);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), 5000u);
    EXPECT_EQ(out[5], 0x44);
    EXPECT_EQ(out[100], 0);
    EXPECT_EQ(out[4999], 0);
}

TEST_F(UfsTest, OutOfSpaceReportsNoSpace)
{
    // Fill the disk with large files until allocation fails.
    std::vector<u8> chunk(8ull << 20, 0x55);
    support::OsStatus status = support::OsStatus::Ok;
    for (int i = 0; i < 100; ++i) {
        auto ino = ufs().create("/fill" + std::to_string(i),
                                os::FileType::Regular);
        if (!ino.ok()) {
            status = ino.status();
            break;
        }
        auto wrote = ufs().writeFile(ino.value(), 0, chunk);
        if (!wrote.ok()) {
            status = wrote.status();
            break;
        }
    }
    EXPECT_EQ(status, support::OsStatus::NoSpace);
    // The system is still usable: remove one file and try again.
    ASSERT_TRUE(ufs().remove("/fill0").ok());
    EXPECT_TRUE(ufs().create("/after", os::FileType::Regular).ok());
}

TEST_F(UfsTest, UnmountMarksCleanRemountWorks)
{
    ASSERT_TRUE(ufs().create("/persist", os::FileType::Regular).ok());
    kernel_->shutdown();

    os::Kernel second(machine_,
                      os::systemPreset(os::SystemPreset::UfsDelayAll));
    second.boot(nullptr, false);
    EXPECT_FALSE(second.lastFsck().has_value()); // Clean: no fsck.
    EXPECT_TRUE(second.ufs().namei("/persist").ok());
}

TEST_F(UfsTest, MountRejectsGarbageDisk)
{
    sim::Machine other(machineConfig());
    os::Kernel kernel(other,
                      os::systemPreset(os::SystemPreset::UfsDelayAll));
    // Boot without formatting a never-formatted disk must panic
    // (cannot mount root).
    EXPECT_THROW(kernel.boot(nullptr, false), sim::CrashException);
}
