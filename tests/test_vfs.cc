/**
 * @file
 * Tests for the VFS/syscall layer: descriptor lifecycle, offsets and
 * append mode, and — most importantly for the paper — the per-policy
 * durability triggers (write-through on write/close, async-after-
 * 64KB, Rio's instant fsync).
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

struct Rig
{
    explicit Rig(os::SystemPreset preset)
        : machine(machineConfig()),
          kernel(machine, os::systemPreset(preset))
    {
        kernel.boot(nullptr, true);
        kernel.fsDisk().resetStats();
    }

    sim::Machine machine;
    os::Kernel kernel;
    os::Process proc{1};
};

} // namespace

TEST(VfsTest, OpenMissingWithoutCreateFails)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto fd = rig.kernel.vfs().open(rig.proc, "/missing",
                                    os::OpenFlags::readOnly());
    EXPECT_EQ(fd.status(), support::OsStatus::NoEnt);
}

TEST(VfsTest, OpenExclusiveFailsOnExisting)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    auto flags = os::OpenFlags::writeOnly();
    flags.excl = true;
    ASSERT_TRUE(vfs.open(rig.proc, "/x", flags).ok());
    auto again = vfs.open(rig.proc, "/x", flags);
    EXPECT_EQ(again.status(), support::OsStatus::Exist);
}

TEST(VfsTest, SequentialReadAdvancesOffset)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/seq", os::OpenFlags::writeOnly());
    std::vector<u8> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    auto rfd = vfs.open(rig.proc, "/seq", os::OpenFlags::readOnly());
    std::vector<u8> part(40);
    ASSERT_TRUE(vfs.read(rig.proc, rfd.value(), part).ok());
    EXPECT_EQ(part[0], 0);
    ASSERT_TRUE(vfs.read(rig.proc, rfd.value(), part).ok());
    EXPECT_EQ(part[0], 40);
    auto n = vfs.read(rig.proc, rfd.value(), part);
    EXPECT_EQ(n.value(), 20u); // Only 20 bytes left.
}

TEST(VfsTest, AppendModeWritesAtEof)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    std::vector<u8> a(10, 1), b(10, 2);
    auto fd = vfs.open(rig.proc, "/app", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), a));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    auto flags = os::OpenFlags::readWrite();
    flags.append = true;
    auto afd = vfs.open(rig.proc, "/app", flags);
    rio::wl::tolerate(vfs.write(rig.proc, afd.value(), b));
    rio::wl::tolerate(vfs.close(rig.proc, afd.value()));

    auto st = vfs.stat("/app");
    EXPECT_EQ(st.value().size, 20u);
    std::vector<u8> out(20);
    auto rfd = vfs.open(rig.proc, "/app", os::OpenFlags::readOnly());
    rio::wl::tolerate(vfs.read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out[9], 1);
    EXPECT_EQ(out[10], 2);
}

TEST(VfsTest, TruncOnOpenEmptiesFile)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    std::vector<u8> data(5000, 7);
    auto fd = vfs.open(rig.proc, "/t", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    auto fd2 = vfs.open(rig.proc, "/t", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.close(rig.proc, fd2.value()));
    EXPECT_EQ(vfs.stat("/t").value().size, 0u);
}

TEST(VfsTest, BadFdRejected)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    std::vector<u8> buf(8);
    EXPECT_EQ(rig.kernel.vfs().read(rig.proc, 42, buf).status(),
              support::OsStatus::BadFd);
    EXPECT_EQ(rig.kernel.vfs().close(rig.proc, -1).status(),
              support::OsStatus::BadFd);
}

TEST(VfsTest, ClosedFdCannotBeUsed)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/c", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    std::vector<u8> buf(8, 0);
    EXPECT_EQ(vfs.write(rig.proc, fd.value(), buf).status(),
              support::OsStatus::BadFd);
}

TEST(VfsTest, WriteToReadOnlyFdDenied)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    rio::wl::tolerate(vfs.open(rig.proc, "/ro", os::OpenFlags::writeOnly()));
    auto fd = vfs.open(rig.proc, "/ro", os::OpenFlags::readOnly());
    std::vector<u8> buf(8, 0);
    EXPECT_EQ(vfs.write(rig.proc, fd.value(), buf).status(),
              support::OsStatus::Access);
}

TEST(VfsTest, FdLimitEnforced)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    support::OsStatus status = support::OsStatus::Ok;
    for (u32 i = 0; i < 200; ++i) {
        auto fd = vfs.open(rig.proc, "/fd" + std::to_string(i),
                           os::OpenFlags::writeOnly());
        if (!fd.ok()) {
            status = fd.status();
            break;
        }
    }
    EXPECT_EQ(status, support::OsStatus::MFile);
}

TEST(VfsTest, LseekRepositions)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    std::vector<u8> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i);
    auto fd = vfs.open(rig.proc, "/lk", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    auto rfd = vfs.open(rig.proc, "/lk", os::OpenFlags::readOnly());
    rio::wl::tolerate(vfs.lseek(rig.proc, rfd.value(), 60));
    std::vector<u8> out(10);
    rio::wl::tolerate(vfs.read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out[0], 60);
}

TEST(VfsTest, ReaddirListsEntries)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    rio::wl::tolerate(vfs.mkdir("/dir"));
    rio::wl::tolerate(vfs.open(rig.proc, "/dir/a", os::OpenFlags::writeOnly()));
    rio::wl::tolerate(vfs.mkdir("/dir/sub"));
    auto listing = vfs.readdir("/dir");
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(listing.value().size(), 2u);
}

TEST(VfsTest, StatReportsTypeAndSize)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    rio::wl::tolerate(vfs.mkdir("/sd"));
    auto st = vfs.stat("/sd");
    EXPECT_EQ(st.value().type, os::FileType::Dir);
    auto fd = vfs.open(rig.proc, "/sf", os::OpenFlags::writeOnly());
    std::vector<u8> data(123, 0);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    EXPECT_EQ(vfs.stat("/sf").value().size, 123u);
    EXPECT_EQ(vfs.stat("/sf").value().type, os::FileType::Regular);
}

// ---------------------------------------------------------------
// Durability policy triggers (the Table 2 differentiators).
// ---------------------------------------------------------------

TEST(VfsPolicy, WriteThroughOnWriteHitsDiskPerWrite)
{
    Rig rig(os::SystemPreset::UfsWriteThroughWrite);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/w", os::OpenFlags::writeOnly());
    std::vector<u8> data(4096, 1);
    const u64 before = rig.kernel.fsDisk().stats().sectorsWritten;
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    EXPECT_GT(rig.kernel.fsDisk().stats().sectorsWritten, before);
}

TEST(VfsPolicy, WriteThroughOnCloseDefersUntilClose)
{
    Rig rig(os::SystemPreset::UfsWriteThroughClose);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/wc", os::OpenFlags::writeOnly());
    std::vector<u8> data(4096, 1);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    const u64 afterWrite =
        rig.kernel.fsDisk().stats().sectorsWritten;
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    EXPECT_GT(rig.kernel.fsDisk().stats().sectorsWritten, afterWrite);
}

TEST(VfsPolicy, Async64KTriggersBackgroundWrite)
{
    Rig rig(os::SystemPreset::UfsDefault);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/a64", os::OpenFlags::writeOnly());
    std::vector<u8> chunk(16 * 1024, 1);
    u64 queuedBefore = rig.kernel.fsDisk().stats().queuedWrites;
    for (int i = 0; i < 5; ++i) // 80 KB > 64 KB threshold.
        rio::wl::tolerate(vfs.write(rig.proc, fd.value(), chunk));
    EXPECT_GT(rig.kernel.fsDisk().stats().queuedWrites, queuedBefore);
}

TEST(VfsPolicy, RioNeverWritesAndFsyncIsInstant)
{
    Rig rig(os::SystemPreset::RioProtected);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/rio", os::OpenFlags::writeOnly());
    std::vector<u8> data(128 * 1024, 1);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    const SimNs before = rig.machine.clock().now();
    rio::wl::tolerate(vfs.fsync(rig.proc, fd.value()));
    vfs.sync();
    const SimNs fsyncCost = rig.machine.clock().now() - before;
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    EXPECT_EQ(rig.kernel.fsDisk().stats().sectorsWritten, 0u);
    EXPECT_EQ(rig.kernel.fsDisk().stats().queuedWrites, 0u);
    // fsync/sync return immediately (just syscall entry cost).
    EXPECT_LT(fsyncCost, 100'000u);
}

TEST(VfsPolicy, RioAdminOverrideReenablesReliabilityWrites)
{
    sim::Machine machine(machineConfig());
    os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    config.adminForceSync = true;
    config.protection = os::ProtectionMode::Off;
    os::Kernel kernel(machine, config);
    kernel.boot(nullptr, true);
    kernel.fsDisk().resetStats();

    os::Process proc(1);
    auto &vfs = kernel.vfs();
    auto fd = vfs.open(proc, "/adm", os::OpenFlags::writeOnly());
    std::vector<u8> data(8192, 1);
    rio::wl::tolerate(vfs.write(proc, fd.value(), data));
    rio::wl::tolerate(vfs.fsync(proc, fd.value()));
    EXPECT_GT(kernel.fsDisk().stats().sectorsWritten, 0u);
}

TEST(VfsPolicy, NonSequentialWriteTriggersFlushInDefaultUfs)
{
    Rig rig(os::SystemPreset::UfsDefault);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/nsq", os::OpenFlags::writeOnly());
    std::vector<u8> chunk(1024, 1);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), chunk));
    const u64 before = rig.kernel.fsDisk().stats().queuedWrites;
    rio::wl::tolerate(vfs.pwrite(rig.proc, fd.value(), 100000, chunk)); // Non-seq.
    rio::wl::tolerate(vfs.pwrite(rig.proc, fd.value(), 5000, chunk));   // Non-seq again.
    EXPECT_GT(rig.kernel.fsDisk().stats().queuedWrites, before);
}

TEST(VfsPolicy, UpdateDaemonFlushesDelayedData)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/dd", os::OpenFlags::writeOnly());
    std::vector<u8> data(8192, 1);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    EXPECT_EQ(rig.kernel.fsDisk().stats().sectorsWritten, 0u);
    EXPECT_EQ(rig.kernel.fsDisk().stats().queuedWrites, 0u);

    // Let 30+ simulated seconds pass; any syscall ticks the daemon.
    rig.machine.clock().advance(31ull * sim::kNsPerSec);
    rio::wl::tolerate(vfs.stat("/dd"));
    rig.kernel.fsDisk().drain(rig.machine.clock());
    EXPECT_GT(rig.kernel.fsDisk().stats().sectorsWritten, 0u);
}

TEST(VfsTest, SymlinkAndReadlinkSyscalls)
{
    Rig rig(os::SystemPreset::UfsDelayAll);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/target",
                       os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 0x12);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    ASSERT_TRUE(vfs.symlink("/target", "/ln").ok());
    auto raw = vfs.readlink("/ln");
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(raw.value(), "/target");
    // Opening through the link reaches the target's data.
    auto lfd = vfs.open(rig.proc, "/ln", os::OpenFlags::readOnly());
    ASSERT_TRUE(lfd.ok());
    std::vector<u8> out(100);
    ASSERT_TRUE(vfs.read(rig.proc, lfd.value(), out).ok());
    EXPECT_EQ(out, data);
    // readlink on a non-link is invalid.
    EXPECT_EQ(vfs.readlink("/target").status(),
              support::OsStatus::Inval);
}

TEST(VfsPolicy, RestoreDataByInoWritesThroughNormalPath)
{
    Rig rig(os::SystemPreset::RioProtected);
    auto &vfs = rig.kernel.vfs();
    auto fd = vfs.open(rig.proc, "/r", os::OpenFlags::writeOnly());
    std::vector<u8> data(100, 9);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    const InodeNo ino = vfs.stat("/r").value().ino;

    std::vector<u8> patch(50, 8);
    ASSERT_TRUE(vfs.restoreDataByIno(ino, 25, patch).ok());
    std::vector<u8> out(100);
    auto rfd = vfs.open(rig.proc, "/r", os::OpenFlags::readOnly());
    rio::wl::tolerate(vfs.read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out[24], 9);
    EXPECT_EQ(out[25], 8);
    EXPECT_EQ(out[74], 8);
    EXPECT_EQ(out[75], 9);

    EXPECT_EQ(vfs.restoreDataByIno(4040, 0, patch).status(),
              support::OsStatus::Stale);
}
