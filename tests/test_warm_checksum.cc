/**
 * @file
 * Warm-reboot detection accounting: pages corrupted by wild stores
 * are flagged by their registry checksums during the restore, and
 * the report's counters reflect what happened — the section 3.2
 * apparatus end to end.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    return c;
}

} // namespace

TEST(WarmChecksum, CorruptedDataPageIsCountedAndStillRestored)
{
    sim::Machine machine(machineConfig());
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioNoProtection);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    os::Process proc(1);
    auto &vfs = kernel->vfs();
    std::vector<u8> data(8192, 0x2d);
    auto fd = vfs.open(proc, "/victim", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(proc, fd.value()));
    const InodeNo ino = vfs.stat("/victim").value().ino;

    // Direct corruption: a wild one-byte store into the cached page.
    auto ref = kernel->ubc().getPage(1, ino, 0, false);
    const Addr page = kernel->ubc().pagePhys(ref);
    machine.mem().raw()[page + 4000] ^= 0xff;

    try {
        machine.crash(sim::CrashCause::KernelPanic, "checksum test");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    core::RioSystem rio2(machine, options);
    os::Kernel rebooted(machine, config);
    rebooted.boot(&rio2, false);
    warm.restoreData(rebooted.vfs(), report);

    // The detection apparatus flagged the page; the restore still
    // proceeded (the paper restores and lets memTest judge).
    EXPECT_EQ(report.dataChecksumBad, 1u);
    EXPECT_GT(report.dataPagesRestored, 0u);

    std::vector<u8> out(8192);
    auto rfd = rebooted.vfs().open(proc, "/victim",
                                   os::OpenFlags::readOnly());
    rio::wl::tolerate(rebooted.vfs().read(proc, rfd.value(), out));
    EXPECT_EQ(out[3999], 0x2d);
    EXPECT_EQ(out[4000], 0x2d ^ 0xff); // The corrupted byte.
}

TEST(WarmChecksum, CorruptedMetadataBlockIsCounted)
{
    sim::Machine machine(machineConfig());
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioNoProtection);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = true;
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    auto kernel = std::make_unique<os::Kernel>(machine, config);
    kernel->boot(rio.get(), true);

    os::Process proc(1);
    rio::wl::tolerate(kernel->vfs().mkdir("/dir"));
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(kernel->vfs().open(proc, "/dir/f" + std::to_string(i),
                           os::OpenFlags::writeOnly()));
    }

    // Corrupt the directory's cached metadata block directly.
    auto &ufs = kernel->ufs();
    auto dirIno = ufs.namei("/dir");
    auto dirInode = ufs.iget(dirIno.value());
    auto block = ufs.bmap(dirIno.value(), dirInode.value(), 0, false);
    auto bref = kernel->bufferCache().bread(1, block.value());
    const Addr page = kernel->bufferCache().pageAddr(bref);
    kernel->bufferCache().brelse(bref);
    machine.mem().raw()[page + 100] ^= 0x55;

    try {
        machine.crash(sim::CrashCause::KernelPanic, "meta checksum");
    } catch (const sim::CrashException &) {
    }
    rio->deactivate();
    rio.reset();
    kernel.reset();
    machine.reset(sim::ResetKind::Warm);

    core::WarmReboot warm(machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_GE(report.metadataChecksumBad, 1u);
}

TEST(WarmChecksum, PerfModeSkipsChecksums)
{
    sim::Machine machine(machineConfig());
    const os::KernelConfig config =
        os::systemPreset(os::SystemPreset::RioProtected);
    core::RioOptions options;
    options.protection = config.protection;
    options.maintainChecksums = false; // Table 2 mode.
    auto rio = std::make_unique<core::RioSystem>(machine, options);
    os::Kernel kernel(machine, config);
    kernel.boot(rio.get(), true);

    os::Process proc(1);
    std::vector<u8> data(4096, 7);
    auto fd = kernel.vfs().open(proc, "/np",
                                os::OpenFlags::writeOnly());
    rio::wl::tolerate(kernel.vfs().write(proc, fd.value(), data));
    rio::wl::tolerate(kernel.vfs().close(proc, fd.value()));

    const auto sweep = rio->verifyChecksums();
    EXPECT_EQ(sweep.checked, 0u); // No checksums were maintained.
}
