/**
 * @file
 * Tests for the warm reboot: the full dump / metadata-restore /
 * fsck / user-level data-restore pipeline, its dirty-only policy,
 * shadow handling for mid-update crashes, hardware that clears
 * memory, and stale-inode accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "support/bytes.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(bool survives = true)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.memorySurvivesReset = survives;
    return c;
}

struct CrashRig
{
    explicit CrashRig(bool survives = true)
        : CrashRig(machineConfig(survives))
    {}

    explicit CrashRig(const sim::MachineConfig &mc) : machine(mc)
    {
        config = os::systemPreset(os::SystemPreset::RioNoProtection);
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), true);
    }

    void
    crashAndReset()
    {
        try {
            machine.crash(sim::CrashCause::KernelPanic, "test");
        } catch (const sim::CrashException &) {
        }
        rio->deactivate();
        rio.reset();
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);
    }

    /** Complete the standard recovery; returns the rebooted kernel. */
    std::unique_ptr<os::Kernel>
    recover(core::WarmRebootReport &report)
    {
        core::WarmReboot warm(machine);
        report = warm.dumpAndRestoreMetadata();
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        auto rebooted = std::make_unique<os::Kernel>(machine, config);
        rebooted->boot(rio.get(), false);
        warm.restoreData(rebooted->vfs(), report);
        return rebooted;
    }

    sim::Machine machine;
    os::KernelConfig config;
    std::unique_ptr<core::RioSystem> rio;
    std::unique_ptr<os::Kernel> kernel;
    os::Process proc{1};
};

// --- Raw access to the surviving registry image. -------------------
// The hardening tests damage the image the way a crashed OS would:
// by scribbling on the raw bytes, not through any API.

using Layout = core::RegistryLayout;

template <typename T>
T
getField(const u8 *slot, u64 off)
{
    T value;
    std::memcpy(&value, slot + off, sizeof(T));
    return value;
}

template <typename T>
void
putField(u8 *slot, u64 off, T value)
{
    std::memcpy(slot + off, &value, sizeof(T));
}

u64
registrySlotCount(sim::Machine &machine)
{
    return machine.mem().region(sim::RegionKind::BufPool).pages() +
           machine.mem().region(sim::RegionKind::UbcPool).pages();
}

u8 *
registrySlot(sim::Machine &machine, u64 index)
{
    const auto &reg =
        machine.mem().region(sim::RegionKind::Registry);
    return machine.mem().raw() + reg.base +
           index * Layout::kEntrySize;
}

/** Indices of live, dirty, active metadata entries. */
std::vector<u64>
dirtyMetadataSlots(sim::Machine &machine)
{
    std::vector<u64> slots;
    for (u64 i = 0; i < registrySlotCount(machine); ++i) {
        const u8 *slot = registrySlot(machine, i);
        if (getField<u32>(slot, Layout::kOffMagic) ==
                Layout::kMagic &&
            getField<u32>(slot, Layout::kOffState) ==
                Layout::kStateActive &&
            getField<u32>(slot, Layout::kOffKind) ==
                Layout::kKindMetadata &&
            getField<u32>(slot, Layout::kOffDirty) != 0) {
            slots.push_back(i);
        }
    }
    return slots;
}

/** Index of the mid-update dirty metadata entry, or ~0 if none. */
u64
changingSlot(sim::Machine &machine)
{
    for (u64 i = 0; i < registrySlotCount(machine); ++i) {
        const u8 *slot = registrySlot(machine, i);
        if (getField<u32>(slot, Layout::kOffMagic) ==
                Layout::kMagic &&
            getField<u32>(slot, Layout::kOffState) ==
                Layout::kStateChanging &&
            getField<u32>(slot, Layout::kOffKind) ==
                Layout::kKindMetadata &&
            getField<u32>(slot, Layout::kOffDirty) != 0)
            return i;
    }
    return ~0ull;
}

/** Snapshot the current on-disk bytes of one file-system block. */
std::vector<u8>
diskBlockBytes(sim::Machine &machine, u64 block)
{
    std::vector<u8> bytes;
    bytes.reserve(sim::kSectorsPerBlock * sim::kSectorSize);
    for (u64 s = 0; s < sim::kSectorsPerBlock; ++s) {
        const auto sector = machine.disk().peekSector(
            static_cast<SectorNo>(block * sim::kSectorsPerBlock + s));
        bytes.insert(bytes.end(), sector.begin(), sector.end());
    }
    return bytes;
}

/** Crash inside a metadata write window (leaves one Changing entry
 *  with a shadow copy), then warm-reset the machine. */
void
midUpdateCrash(CrashRig &rig)
{
    auto &ufs = rig.kernel->ufs();
    auto rootInode = ufs.iget(os::Ufs::kRootIno);
    auto block = ufs.bmap(os::Ufs::kRootIno, rootInode.value(), 0,
                          false);
    auto &buf = rig.kernel->bufferCache();
    auto ref = buf.bread(1, block.value());
    try {
        os::BufferCache::WriteWindow window(buf, ref);
        window.store32(0, 0xdeadbeef); // Half-smashed dirent.
        throw sim::CrashException(sim::CrashCause::KernelPanic,
                                  "mid-update",
                                  rig.machine.clock().now());
    } catch (const sim::CrashException &) {
        rig.machine.noteCrash(rig.machine.clock().now());
    }
    rig.rio->deactivate();
    rig.rio.reset();
    rig.kernel.reset();
    rig.machine.reset(sim::ResetKind::Warm);
}

} // namespace

TEST(WarmReboot, RecoversFilesAndDirectories)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    rio::wl::tolerate(vfs.mkdir("/a"));
    rio::wl::tolerate(vfs.mkdir("/a/b"));
    std::vector<u8> data(30000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 11);
    auto fd = vfs.open(rig.proc, "/a/b/f", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);

    EXPECT_GT(report.metadataRestored, 0u);
    EXPECT_GT(report.dataPagesRestored, 0u);
    EXPECT_EQ(report.staleInodes, 0u);
    EXPECT_EQ(report.corruptEntries, 0u);

    std::vector<u8> out(30000);
    auto rfd = rebooted->vfs().open(rig.proc, "/a/b/f",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    ASSERT_TRUE(rebooted->vfs().read(rig.proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DeletionsSurviveTheCrashToo)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/doomed", os::OpenFlags::writeOnly());
    std::vector<u8> data(5000, 0x13);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    rio::wl::tolerate(vfs.unlink("/doomed"));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // The file was deleted before the crash; it must stay deleted.
    EXPECT_EQ(rebooted->vfs().stat("/doomed").status(),
              support::OsStatus::NoEnt);
    EXPECT_EQ(report.staleInodes, 0u);
}

TEST(WarmReboot, OverwritesSurvive)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> v1(8192, 0x01), v2(8192, 0x02);
    auto fd = vfs.open(rig.proc, "/ver", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), v1));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    auto fd2 = vfs.open(rig.proc, "/ver", os::OpenFlags::readWrite());
    rio::wl::tolerate(vfs.pwrite(rig.proc, fd2.value(), 0, v2));
    rio::wl::tolerate(vfs.close(rig.proc, fd2.value()));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    std::vector<u8> out(8192);
    auto rfd = rebooted->vfs().open(rig.proc, "/ver",
                                    os::OpenFlags::readOnly());
    rio::wl::tolerate(rebooted->vfs().read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out, v2);
}

TEST(WarmReboot, CleanPagesAreNotRestored)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(40000, 0x27);
    auto fd = vfs.open(rig.proc, "/flushed",
                       os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    // Force everything to disk outside the policy (admin action).
    rig.kernel->ufs().syncAll(true);

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // Nothing was dirty: nothing to restore, yet the data is there.
    EXPECT_EQ(report.dataPagesRestored, 0u);
    std::vector<u8> out(40000);
    auto rfd = rebooted->vfs().open(rig.proc, "/flushed",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    rio::wl::tolerate(rebooted->vfs().read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DumpLandsOnSwapPartition)
{
    CrashRig rig;
    rig.crashAndReset();
    core::WarmReboot warm(rig.machine);
    rig.machine.swap().resetStats();
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.dumpBytes, rig.machine.mem().size());
    EXPECT_GE(rig.machine.swap().stats().sectorsWritten,
              rig.machine.mem().size() / sim::kSectorSize);
}

TEST(WarmReboot, PcStyleMemoryLossMeansNothingRecovered)
{
    CrashRig rig(/*survives=*/false);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(10000, 0x09);
    auto fd = vfs.open(rig.proc, "/lost", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    rig.crashAndReset(); // Memory is cleared by the reset.
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.entriesSeen, 0u);
    EXPECT_EQ(report.metadataRestored, 0u);
}

TEST(WarmReboot, MidUpdateCrashRestoresShadowCopy)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(vfs.open(rig.proc, "/pre" + std::to_string(i),
                 os::OpenFlags::writeOnly()));
    }
    // Open a write window on the root directory block and crash
    // inside it.
    midUpdateCrash(rig);

    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    EXPECT_EQ(report.metadataFromShadow, 1u);
    // All three files are reachable: the torn dirent never became
    // visible.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(rebooted->vfs()
                        .stat("/pre" + std::to_string(i))
                        .ok());
    }
    ASSERT_TRUE(rebooted->lastFsck().has_value());
    EXPECT_EQ(rebooted->lastFsck()->badDirents, 0u);
}

// --- Adversarial-image hardening (RestorePolicy). ------------------

TEST(WarmReboot, BadChecksumMetadataNeverReachesDisk)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 4; ++i) {
        const std::string dir = "/q" + std::to_string(i);
        rio::wl::tolerate(vfs.mkdir(dir));
        auto fd = vfs.open(rig.proc, dir + "/f",
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(4096, static_cast<u8>(i + 1));
        rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
        rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    }
    rig.crashAndReset();

    auto slots = dirtyMetadataSlots(rig.machine);
    ASSERT_FALSE(slots.empty());
    u8 *victim = registrySlot(rig.machine, slots[0]);
    const Addr page = getField<u64>(victim, Layout::kOffPhysAddr);
    const u32 block = getField<u32>(victim, Layout::kOffDiskBlock);
    ASSERT_NE(getField<u32>(victim, Layout::kOffChecksum), 0u);
    // Scribble the registered page: its checksum no longer matches.
    std::memset(rig.machine.mem().raw() + page, 0xAB, sim::kPageSize);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    EXPECT_GE(report.metadataChecksumBad, 1u);
    EXPECT_GE(report.recovery.metadataQuarantined, 1u);
    // The invariant: a known-bad page must never reach the disk. The
    // stale on-disk copy is byte-identical to before the restore.
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Contrast: the trusting policy pushes the garbage to disk.
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_GE(report2.metadataChecksumBad, 1u);
    EXPECT_EQ(report2.recovery.metadataQuarantined, 0u);
    const std::vector<u8> after = diskBlockBytes(rig.machine, block);
    EXPECT_NE(after, before);
    EXPECT_EQ(after[0], 0xAB);
}

TEST(WarmReboot, ContestedDiskBlockIsLeftToFsck)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 4; ++i)
        rio::wl::tolerate(vfs.mkdir("/dup" + std::to_string(i)));
    rig.crashAndReset();

    auto slots = dirtyMetadataSlots(rig.machine);
    ASSERT_GE(slots.size(), 2u);
    u8 *first = registrySlot(rig.machine, slots[0]);
    const u32 block = getField<u32>(first, Layout::kOffDiskBlock);
    u8 *thief = nullptr;
    for (std::size_t i = 1; i < slots.size(); ++i) {
        u8 *slot = registrySlot(rig.machine, slots[i]);
        if (getField<u32>(slot, Layout::kOffDiskBlock) != block) {
            thief = slot;
            break;
        }
    }
    ASSERT_NE(thief, nullptr);
    // Cross-link: two surviving entries now claim the same block.
    putField<u32>(thief, Layout::kOffDiskBlock, block);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    // Both claimants are rejected; the contested block stays at the
    // on-disk copy for fsck to sort out.
    EXPECT_EQ(report.recovery.duplicateClaims, 2u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Trusting restores both claimants (last writer wins).
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_EQ(report2.recovery.duplicateClaims, 0u);
    EXPECT_EQ(report2.metadataRestored, report.metadataRestored + 2);
}

TEST(WarmReboot, TruncatedDumpFailsSafe)
{
    // A swap partition half the size of memory: the dump cannot fit.
    sim::MachineConfig small = machineConfig();
    small.swapBytes = 8ull << 20;
    small.requireSwapHoldsDump = false;
    CrashRig rig(small);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(20000, 0x44);
    auto fd = vfs.open(rig.proc, "/f", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    rig.crashAndReset();

    core::WarmReboot warm(rig.machine);
    rig.machine.swap().resetStats();
    auto report = warm.dumpAndRestoreMetadata();
    // The failure is recorded and no partial dump is written...
    EXPECT_FALSE(report.recovery.dumpOk);
    EXPECT_EQ(report.recovery.dumpShortfallBytes, 8ull << 20);
    EXPECT_EQ(rig.machine.swap().stats().sectorsWritten, 0u);
    // ...but the metadata restore still runs from the host image.
    EXPECT_GT(report.metadataRestored, 0u);

    // Step 2 has no dump to replay: skipped, not fabricated.
    core::RioOptions options;
    options.protection = rig.config.protection;
    options.maintainChecksums = true;
    rig.rio = std::make_unique<core::RioSystem>(rig.machine, options);
    auto rebooted =
        std::make_unique<os::Kernel>(rig.machine, rig.config);
    rebooted->boot(rig.rio.get(), false);
    warm.restoreData(rebooted->vfs(), report);
    EXPECT_TRUE(report.recovery.dataRestoreSkipped);
    EXPECT_EQ(report.dataPagesRestored, 0u);
}

TEST(WarmReboot, MidUpdateEntryWithoutShadowIsUnrestorable)
{
    CrashRig rig;
    // Dirty the root directory so beginWrite makes a shadow copy.
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(rig.kernel->vfs().open(rig.proc, "/pre" + std::to_string(i),
                               os::OpenFlags::writeOnly()));
    }
    midUpdateCrash(rig);

    const u64 index = changingSlot(rig.machine);
    ASSERT_NE(index, ~0ull);
    // The shadow pointer did not survive: no consistent source left
    // (the page itself is torn mid-update).
    putField<u64>(registrySlot(rig.machine, index),
                  Layout::kOffShadow, 0);

    // Hardened probes the page as a fallback candidate, finds it
    // fails the checksum, and quarantines rather than restoring a
    // torn block.
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.metadataFromShadow, 0u);
    EXPECT_EQ(report.metadataFromPhysFallback, 0u);
    EXPECT_GE(report.recovery.metadataQuarantined, 1u);
    EXPECT_EQ(report.metadataUnrestorable, 0u);

    // Trusting never looks past the missing shadow: unrestorable.
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_EQ(report2.metadataFromShadow, 0u);
    EXPECT_EQ(report2.metadataUnrestorable, 1u);
}

TEST(WarmReboot, CorruptedShadowCopyIsQuarantined)
{
    CrashRig rig;
    // Dirty the root directory so beginWrite makes a shadow copy.
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(rig.kernel->vfs().open(rig.proc, "/pre" + std::to_string(i),
                               os::OpenFlags::writeOnly()));
    }
    midUpdateCrash(rig);

    const u64 index = changingSlot(rig.machine);
    ASSERT_NE(index, ~0ull);
    u8 *slot = registrySlot(rig.machine, index);
    ASSERT_NE(getField<u32>(slot, Layout::kOffChecksum), 0u);
    const Addr shadow = getField<u64>(slot, Layout::kOffShadow);
    const u32 block = getField<u32>(slot, Layout::kOffDiskBlock);
    ASSERT_NE(shadow, 0u);
    // The shadow page was scribbled over during the outage: it no
    // longer holds the last consistent contents.
    std::memset(rig.machine.mem().raw() + shadow, 0xCD,
                sim::kPageSize);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    EXPECT_EQ(report.recovery.shadowChecksumBad, 1u);
    EXPECT_GE(report.recovery.metadataQuarantined, 1u);
    EXPECT_EQ(report.metadataFromShadow, 0u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Trusting uses the smashed shadow anyway.
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_EQ(report2.metadataFromShadow, 1u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block)[0], 0xCD);
}

TEST(WarmReboot, StaleInodeCounted)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(5000, 0x31);
    auto fd = vfs.open(rig.proc, "/ghost", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    const InodeNo ino = vfs.stat("/ghost").value().ino;

    rig.crashAndReset();

    // Sabotage: free the inode on disk between the crash and the
    // data restore (as if its metadata never survived).
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    {
        // Zero the inode directly on disk, then fix the tree.
        sim::SimClock clock;
        std::vector<u8> itb(os::Ufs::kBlockSize);
        // Recompute geometry from a fresh boot later; here we just
        // clear every inode-table block copy of that inode type.
        os::Kernel probe(rig.machine, rig.config);
        // (boot runs fsck; afterwards remove the file's dirent so
        // the inode becomes orphaned and is freed on the NEXT fsck)
        core::RioOptions options;
        options.protection = rig.config.protection;
        core::RioSystem rio2(rig.machine, options);
        probe.boot(&rio2, false);
        rio::wl::tolerate(probe.ufs().remove("/ghost"));
        (void)itb;
        (void)clock;
        (void)ino;
        // Now run the data restore against the fs without the file.
        warm.restoreData(probe.vfs(), report);
        EXPECT_GT(report.staleInodes, 0u);
    }
}

// --- Double-crash sweep: a second crash at every recovery phase ----
// boundary. The checkpointed, re-entrant recovery must converge on
// the next pass, resume rather than redo (no fsync'd page restored
// twice), and leave the files byte-identical to a single-crash run.

namespace
{

sim::MachineConfig
sweepMachineConfig()
{
    sim::MachineConfig c = machineConfig(true);
    // One megabyte past the dump: room for the progress record in
    // the last swap sector (the 16 MB rig has none by design).
    c.swapBytes = 17ull << 20;
    return c;
}

struct SweepPoint
{
    core::RecoveryPhase phase;
    bool boundary; ///< Crash at step == total (vs. the first step).
    const char *name;
};

/** Arm @p warm to crash once at the requested recovery point. */
void
armCrashProbe(core::WarmReboot &warm, sim::Machine &machine,
              const SweepPoint &point, bool &fired)
{
    warm.setProbe([&machine, point, &fired](core::RecoveryPhase phase,
                                            u64 step, u64 total) {
        if (fired || phase != point.phase)
            return;
        if (point.boundary ? step != total : step != 0)
            return;
        fired = true;
        throw sim::CrashException(sim::CrashCause::KernelPanic,
                                  "second crash during recovery",
                                  machine.clock().now());
    });
}

/** The standard three-file workload the sweep recovers. */
std::vector<std::vector<u8>>
writeSweepFiles(CrashRig &rig)
{
    auto &vfs = rig.kernel->vfs();
    rio::wl::tolerate(vfs.mkdir("/sweep"));
    std::vector<std::vector<u8>> contents;
    for (int f = 0; f < 3; ++f) {
        std::vector<u8> data(20000 + 400 * f);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<u8>(i * 7 + f);
        auto fd = vfs.open(rig.proc,
                           "/sweep/f" + std::to_string(f),
                           os::OpenFlags::writeOnly());
        rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
        rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
        contents.push_back(std::move(data));
    }
    return contents;
}

void
expectSweepFilesIntact(CrashRig &rig,
                       const std::vector<std::vector<u8>> &contents)
{
    for (std::size_t f = 0; f < contents.size(); ++f) {
        std::vector<u8> out(contents[f].size());
        auto fd = rig.kernel->vfs().open(
            rig.proc, "/sweep/f" + std::to_string(f),
            os::OpenFlags::readOnly());
        ASSERT_TRUE(fd.ok()) << "file " << f << " lost";
        ASSERT_TRUE(
            rig.kernel->vfs().read(rig.proc, fd.value(), out).ok());
        EXPECT_EQ(out, contents[f]) << "file " << f << " damaged";
    }
}

/** Run one full recovery pass (dump + boot + data restore). */
core::WarmRebootReport
recoverOnce(CrashRig &rig, core::WarmReboot &warm)
{
    core::WarmRebootReport report = warm.dumpAndRestoreMetadata();
    core::RioOptions options;
    options.protection = rig.config.protection;
    options.maintainChecksums = true;
    rig.rio = std::make_unique<core::RioSystem>(rig.machine, options);
    rig.kernel = std::make_unique<os::Kernel>(rig.machine, rig.config);
    rig.kernel->boot(rig.rio.get(), false);
    warm.restoreData(rig.kernel->vfs(), report);
    return report;
}

u32
checkpointFlags(sim::Machine &machine)
{
    const auto sector = machine.swap().peekSector(
        machine.swap().numSectors() - 1);
    if (support::loadLE<u32>(sector, 0) !=
        core::WarmReboot::kCkptMagic)
        return 0;
    return support::loadLE<u32>(sector, 8);
}

class WarmRebootSweep : public ::testing::TestWithParam<SweepPoint>
{};

} // namespace

TEST_P(WarmRebootSweep, SecondCrashConvergesWithoutDoubleRestore)
{
    const SweepPoint point = GetParam();
    CrashRig rig{sweepMachineConfig()};
    const auto contents = writeSweepFiles(rig);
    rig.crashAndReset();

    // Pass 1: crash at the requested point of recovery.
    core::WarmRebootReport pass1;
    bool fired = false;
    bool crashed = false;
    {
        core::WarmReboot warm(rig.machine);
        armCrashProbe(warm, rig.machine, point, fired);
        try {
            pass1 = recoverOnce(rig, warm);
        } catch (const sim::CrashException &crash) {
            crashed = true;
            rig.machine.noteCrash(crash.when());
            rig.rio.reset();
            rig.kernel.reset();
            rig.machine.reset(sim::ResetKind::Warm);
        }
    }
    ASSERT_TRUE(fired) << "probe never reached "
                       << core::recoveryPhaseName(point.phase);
    ASSERT_TRUE(crashed);

    // For the fsync-before-checkpoint oracle: the platter image at
    // the moment the second crash hit.
    std::vector<u8> platter;
    const bool dataOracle =
        point.phase == core::RecoveryPhase::DataRestore &&
        point.boundary;
    if (dataOracle) {
        auto &disk = rig.machine.disk();
        platter.reserve(disk.numSectors() * sim::kSectorSize);
        for (SectorNo s = 0; s < disk.numSectors(); ++s) {
            const auto sector = disk.peekSector(s);
            platter.insert(platter.end(), sector.begin(),
                           sector.end());
        }
    }

    // Pass 2: plain recovery, no interference. Must converge.
    core::WarmReboot warm2(rig.machine);
    const core::WarmRebootReport pass2 = recoverOnce(rig, warm2);
    expectSweepFilesIntact(rig, contents);
    EXPECT_NE(checkpointFlags(rig.machine) &
                  core::WarmReboot::kFlagAllDone,
              0u)
        << "second pass did not retire the checkpoint";

    // Resume bookkeeping: any crash past the dump-complete record
    // resumes; a crash before the first checkpoint starts fresh.
    const bool expectResume =
        point.phase != core::RecoveryPhase::Dump || point.boundary;
    EXPECT_EQ(pass2.recovery.resumed, expectResume);

    if (point.phase == core::RecoveryPhase::MetadataRestore &&
        point.boundary) {
        // Every metadata entry was processed (and checkpointed) by
        // the dead pass: none may be pushed to disk twice.
        EXPECT_GT(pass1.entriesSeen, 0u);
        EXPECT_EQ(pass2.metadataRestored, 0u);
        EXPECT_GT(pass2.recovery.metadataSkippedResume, 0u);
        EXPECT_EQ(static_cast<core::RecoveryPhase>(
                      pass2.recovery.resumePhase),
                  core::RecoveryPhase::DataRestore);
    }
    if (point.phase == core::RecoveryPhase::DataRestore) {
        // Metadata completed in pass 1 either way.
        EXPECT_EQ(pass2.metadataRestored, 0u);
        EXPECT_GT(pass2.recovery.metadataSkippedResume, 0u);
    }
    if (dataOracle) {
        // The dead pass fsync'd every rebuilt file before its
        // checkpoint advanced, so the resumed pass replays nothing:
        // no data page is restored twice...
        EXPECT_GT(pass1.dataPagesRestored, 0u);
        EXPECT_EQ(pass2.dataPagesRestored, 0u);
        EXPECT_EQ(pass2.recovery.dataSkippedResume,
                  pass1.dataPagesRestored);
        // ...and the platter proves it: the recovered files' data
        // blocks are byte-identical to the image the second crash
        // left behind (extension of the disk-byte snapshot oracle).
        auto &ufs = rig.kernel->ufs();
        for (std::size_t f = 0; f < contents.size(); ++f) {
            auto ino =
                ufs.namei("/sweep/f" + std::to_string(f));
            ASSERT_TRUE(ino.ok());
            auto inode = ufs.iget(ino.value());
            ASSERT_TRUE(inode.ok());
            const u64 fileBlocks =
                (contents[f].size() + sim::kPageSize - 1) /
                sim::kPageSize;
            for (u64 fb = 0; fb < fileBlocks; ++fb) {
                auto block = ufs.bmap(ino.value(), inode.value(),
                                      fb, false);
                if (!block.ok() || block.value() == 0)
                    continue;
                const auto now =
                    diskBlockBytes(rig.machine, block.value());
                const auto *then =
                    platter.data() +
                    block.value() * sim::kPageSize;
                EXPECT_EQ(std::memcmp(now.data(), then,
                                      sim::kPageSize),
                          0)
                    << "file " << f << " block " << fb
                    << " rewritten by the resumed pass";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PhaseBoundaries, WarmRebootSweep,
    ::testing::Values(
        SweepPoint{core::RecoveryPhase::Dump, false, "DumpStart"},
        SweepPoint{core::RecoveryPhase::Dump, true, "DumpBoundary"},
        SweepPoint{core::RecoveryPhase::MetadataRestore, false,
                   "MetadataStart"},
        SweepPoint{core::RecoveryPhase::MetadataRestore, true,
                   "MetadataBoundary"},
        SweepPoint{core::RecoveryPhase::DataRestore, false,
                   "DataStart"},
        SweepPoint{core::RecoveryPhase::DataRestore, true,
                   "DataBoundary"}),
    [](const ::testing::TestParamInfo<SweepPoint> &info) {
        return std::string(info.param.name);
    });

TEST(WarmReboot, MidDataCrashRedoesOnlyTheOpenFile)
{
    CrashRig rig{sweepMachineConfig()};
    const auto contents = writeSweepFiles(rig);
    rig.crashAndReset();

    // Crash halfway through the data restore: past at least one
    // file boundary, short of the last.
    core::WarmRebootReport pass1;
    bool fired = false;
    bool crashed = false;
    {
        core::WarmReboot warm(rig.machine);
        warm.setProbe([&](core::RecoveryPhase phase, u64 step,
                          u64 total) {
            if (fired || phase != core::RecoveryPhase::DataRestore)
                return;
            if (step * 2 < total || step == total)
                return;
            fired = true;
            throw sim::CrashException(sim::CrashCause::KernelPanic,
                                      "second crash mid-file",
                                      rig.machine.clock().now());
        });
        try {
            pass1 = recoverOnce(rig, warm);
        } catch (const sim::CrashException &crash) {
            crashed = true;
            rig.machine.noteCrash(crash.when());
            rig.rio.reset();
            rig.kernel.reset();
            rig.machine.reset(sim::ResetKind::Warm);
        }
    }
    ASSERT_TRUE(fired);
    ASSERT_TRUE(crashed);

    core::WarmReboot warm2(rig.machine);
    const core::WarmRebootReport pass2 = recoverOnce(rig, warm2);
    expectSweepFilesIntact(rig, contents);
    EXPECT_TRUE(pass2.recovery.resumed);
    // Files fully rebuilt and fsync'd before the crash are skipped;
    // only the file that was mid-rebuild (plus the rest) is redone.
    EXPECT_GT(pass2.recovery.dataSkippedResume, 0u);
    EXPECT_LE(pass2.recovery.dataSkippedResume,
              pass1.dataPagesRestored);
    EXPECT_GT(pass2.dataPagesRestored, 0u);
}
