/**
 * @file
 * Tests for the warm reboot: the full dump / metadata-restore /
 * fsck / user-level data-restore pipeline, its dirty-only policy,
 * shadow handling for mid-update crashes, hardware that clears
 * memory, and stale-inode accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(bool survives = true)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.memorySurvivesReset = survives;
    return c;
}

struct CrashRig
{
    explicit CrashRig(bool survives = true)
        : CrashRig(machineConfig(survives))
    {}

    explicit CrashRig(const sim::MachineConfig &mc) : machine(mc)
    {
        config = os::systemPreset(os::SystemPreset::RioNoProtection);
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), true);
    }

    void
    crashAndReset()
    {
        try {
            machine.crash(sim::CrashCause::KernelPanic, "test");
        } catch (const sim::CrashException &) {
        }
        rio->deactivate();
        rio.reset();
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);
    }

    /** Complete the standard recovery; returns the rebooted kernel. */
    std::unique_ptr<os::Kernel>
    recover(core::WarmRebootReport &report)
    {
        core::WarmReboot warm(machine);
        report = warm.dumpAndRestoreMetadata();
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        auto rebooted = std::make_unique<os::Kernel>(machine, config);
        rebooted->boot(rio.get(), false);
        warm.restoreData(rebooted->vfs(), report);
        return rebooted;
    }

    sim::Machine machine;
    os::KernelConfig config;
    std::unique_ptr<core::RioSystem> rio;
    std::unique_ptr<os::Kernel> kernel;
    os::Process proc{1};
};

// --- Raw access to the surviving registry image. -------------------
// The hardening tests damage the image the way a crashed OS would:
// by scribbling on the raw bytes, not through any API.

using Layout = core::RegistryLayout;

template <typename T>
T
getField(const u8 *slot, u64 off)
{
    T value;
    std::memcpy(&value, slot + off, sizeof(T));
    return value;
}

template <typename T>
void
putField(u8 *slot, u64 off, T value)
{
    std::memcpy(slot + off, &value, sizeof(T));
}

u64
registrySlotCount(sim::Machine &machine)
{
    return machine.mem().region(sim::RegionKind::BufPool).pages() +
           machine.mem().region(sim::RegionKind::UbcPool).pages();
}

u8 *
registrySlot(sim::Machine &machine, u64 index)
{
    const auto &reg =
        machine.mem().region(sim::RegionKind::Registry);
    return machine.mem().raw() + reg.base +
           index * Layout::kEntrySize;
}

/** Indices of live, dirty, active metadata entries. */
std::vector<u64>
dirtyMetadataSlots(sim::Machine &machine)
{
    std::vector<u64> slots;
    for (u64 i = 0; i < registrySlotCount(machine); ++i) {
        const u8 *slot = registrySlot(machine, i);
        if (getField<u32>(slot, Layout::kOffMagic) ==
                Layout::kMagic &&
            getField<u32>(slot, Layout::kOffState) ==
                Layout::kStateActive &&
            getField<u32>(slot, Layout::kOffKind) ==
                Layout::kKindMetadata &&
            getField<u32>(slot, Layout::kOffDirty) != 0) {
            slots.push_back(i);
        }
    }
    return slots;
}

/** Index of the mid-update dirty metadata entry, or ~0 if none. */
u64
changingSlot(sim::Machine &machine)
{
    for (u64 i = 0; i < registrySlotCount(machine); ++i) {
        const u8 *slot = registrySlot(machine, i);
        if (getField<u32>(slot, Layout::kOffMagic) ==
                Layout::kMagic &&
            getField<u32>(slot, Layout::kOffState) ==
                Layout::kStateChanging &&
            getField<u32>(slot, Layout::kOffKind) ==
                Layout::kKindMetadata &&
            getField<u32>(slot, Layout::kOffDirty) != 0)
            return i;
    }
    return ~0ull;
}

/** Snapshot the current on-disk bytes of one file-system block. */
std::vector<u8>
diskBlockBytes(sim::Machine &machine, u64 block)
{
    std::vector<u8> bytes;
    bytes.reserve(sim::kSectorsPerBlock * sim::kSectorSize);
    for (u64 s = 0; s < sim::kSectorsPerBlock; ++s) {
        const auto sector = machine.disk().peekSector(
            static_cast<SectorNo>(block * sim::kSectorsPerBlock + s));
        bytes.insert(bytes.end(), sector.begin(), sector.end());
    }
    return bytes;
}

/** Crash inside a metadata write window (leaves one Changing entry
 *  with a shadow copy), then warm-reset the machine. */
void
midUpdateCrash(CrashRig &rig)
{
    auto &ufs = rig.kernel->ufs();
    auto rootInode = ufs.iget(os::Ufs::kRootIno);
    auto block = ufs.bmap(os::Ufs::kRootIno, rootInode.value(), 0,
                          false);
    auto &buf = rig.kernel->bufferCache();
    auto ref = buf.bread(1, block.value());
    try {
        os::BufferCache::WriteWindow window(buf, ref);
        window.store32(0, 0xdeadbeef); // Half-smashed dirent.
        throw sim::CrashException(sim::CrashCause::KernelPanic,
                                  "mid-update",
                                  rig.machine.clock().now());
    } catch (const sim::CrashException &) {
        rig.machine.noteCrash(rig.machine.clock().now());
    }
    rig.rio->deactivate();
    rig.rio.reset();
    rig.kernel.reset();
    rig.machine.reset(sim::ResetKind::Warm);
}

} // namespace

TEST(WarmReboot, RecoversFilesAndDirectories)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    rio::wl::tolerate(vfs.mkdir("/a"));
    rio::wl::tolerate(vfs.mkdir("/a/b"));
    std::vector<u8> data(30000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 11);
    auto fd = vfs.open(rig.proc, "/a/b/f", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);

    EXPECT_GT(report.metadataRestored, 0u);
    EXPECT_GT(report.dataPagesRestored, 0u);
    EXPECT_EQ(report.staleInodes, 0u);
    EXPECT_EQ(report.corruptEntries, 0u);

    std::vector<u8> out(30000);
    auto rfd = rebooted->vfs().open(rig.proc, "/a/b/f",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    ASSERT_TRUE(rebooted->vfs().read(rig.proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DeletionsSurviveTheCrashToo)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/doomed", os::OpenFlags::writeOnly());
    std::vector<u8> data(5000, 0x13);
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    rio::wl::tolerate(vfs.unlink("/doomed"));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // The file was deleted before the crash; it must stay deleted.
    EXPECT_EQ(rebooted->vfs().stat("/doomed").status(),
              support::OsStatus::NoEnt);
    EXPECT_EQ(report.staleInodes, 0u);
}

TEST(WarmReboot, OverwritesSurvive)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> v1(8192, 0x01), v2(8192, 0x02);
    auto fd = vfs.open(rig.proc, "/ver", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), v1));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    auto fd2 = vfs.open(rig.proc, "/ver", os::OpenFlags::readWrite());
    rio::wl::tolerate(vfs.pwrite(rig.proc, fd2.value(), 0, v2));
    rio::wl::tolerate(vfs.close(rig.proc, fd2.value()));

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    std::vector<u8> out(8192);
    auto rfd = rebooted->vfs().open(rig.proc, "/ver",
                                    os::OpenFlags::readOnly());
    rio::wl::tolerate(rebooted->vfs().read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out, v2);
}

TEST(WarmReboot, CleanPagesAreNotRestored)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(40000, 0x27);
    auto fd = vfs.open(rig.proc, "/flushed",
                       os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    // Force everything to disk outside the policy (admin action).
    rig.kernel->ufs().syncAll(true);

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // Nothing was dirty: nothing to restore, yet the data is there.
    EXPECT_EQ(report.dataPagesRestored, 0u);
    std::vector<u8> out(40000);
    auto rfd = rebooted->vfs().open(rig.proc, "/flushed",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    rio::wl::tolerate(rebooted->vfs().read(rig.proc, rfd.value(), out));
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DumpLandsOnSwapPartition)
{
    CrashRig rig;
    rig.crashAndReset();
    core::WarmReboot warm(rig.machine);
    rig.machine.swap().resetStats();
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.dumpBytes, rig.machine.mem().size());
    EXPECT_GE(rig.machine.swap().stats().sectorsWritten,
              rig.machine.mem().size() / sim::kSectorSize);
}

TEST(WarmReboot, PcStyleMemoryLossMeansNothingRecovered)
{
    CrashRig rig(/*survives=*/false);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(10000, 0x09);
    auto fd = vfs.open(rig.proc, "/lost", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));

    rig.crashAndReset(); // Memory is cleared by the reset.
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.entriesSeen, 0u);
    EXPECT_EQ(report.metadataRestored, 0u);
}

TEST(WarmReboot, MidUpdateCrashRestoresShadowCopy)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(vfs.open(rig.proc, "/pre" + std::to_string(i),
                 os::OpenFlags::writeOnly()));
    }
    // Open a write window on the root directory block and crash
    // inside it.
    midUpdateCrash(rig);

    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    EXPECT_EQ(report.metadataFromShadow, 1u);
    // All three files are reachable: the torn dirent never became
    // visible.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(rebooted->vfs()
                        .stat("/pre" + std::to_string(i))
                        .ok());
    }
    ASSERT_TRUE(rebooted->lastFsck().has_value());
    EXPECT_EQ(rebooted->lastFsck()->badDirents, 0u);
}

// --- Adversarial-image hardening (RestorePolicy). ------------------

TEST(WarmReboot, BadChecksumMetadataNeverReachesDisk)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 4; ++i) {
        const std::string dir = "/q" + std::to_string(i);
        rio::wl::tolerate(vfs.mkdir(dir));
        auto fd = vfs.open(rig.proc, dir + "/f",
                           os::OpenFlags::writeOnly());
        std::vector<u8> data(4096, static_cast<u8>(i + 1));
        rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
        rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    }
    rig.crashAndReset();

    auto slots = dirtyMetadataSlots(rig.machine);
    ASSERT_FALSE(slots.empty());
    u8 *victim = registrySlot(rig.machine, slots[0]);
    const Addr page = getField<u64>(victim, Layout::kOffPhysAddr);
    const u32 block = getField<u32>(victim, Layout::kOffDiskBlock);
    ASSERT_NE(getField<u32>(victim, Layout::kOffChecksum), 0u);
    // Scribble the registered page: its checksum no longer matches.
    std::memset(rig.machine.mem().raw() + page, 0xAB, sim::kPageSize);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    EXPECT_GE(report.metadataChecksumBad, 1u);
    EXPECT_GE(report.recovery.metadataQuarantined, 1u);
    // The invariant: a known-bad page must never reach the disk. The
    // stale on-disk copy is byte-identical to before the restore.
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Contrast: the trusting policy pushes the garbage to disk.
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_GE(report2.metadataChecksumBad, 1u);
    EXPECT_EQ(report2.recovery.metadataQuarantined, 0u);
    const std::vector<u8> after = diskBlockBytes(rig.machine, block);
    EXPECT_NE(after, before);
    EXPECT_EQ(after[0], 0xAB);
}

TEST(WarmReboot, ContestedDiskBlockIsLeftToFsck)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 4; ++i)
        rio::wl::tolerate(vfs.mkdir("/dup" + std::to_string(i)));
    rig.crashAndReset();

    auto slots = dirtyMetadataSlots(rig.machine);
    ASSERT_GE(slots.size(), 2u);
    u8 *first = registrySlot(rig.machine, slots[0]);
    const u32 block = getField<u32>(first, Layout::kOffDiskBlock);
    u8 *thief = nullptr;
    for (std::size_t i = 1; i < slots.size(); ++i) {
        u8 *slot = registrySlot(rig.machine, slots[i]);
        if (getField<u32>(slot, Layout::kOffDiskBlock) != block) {
            thief = slot;
            break;
        }
    }
    ASSERT_NE(thief, nullptr);
    // Cross-link: two surviving entries now claim the same block.
    putField<u32>(thief, Layout::kOffDiskBlock, block);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    // Both claimants are rejected; the contested block stays at the
    // on-disk copy for fsck to sort out.
    EXPECT_EQ(report.recovery.duplicateClaims, 2u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Trusting restores both claimants (last writer wins).
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_EQ(report2.recovery.duplicateClaims, 0u);
    EXPECT_EQ(report2.metadataRestored, report.metadataRestored + 2);
}

TEST(WarmReboot, TruncatedDumpFailsSafe)
{
    // A swap partition half the size of memory: the dump cannot fit.
    sim::MachineConfig small = machineConfig();
    small.swapBytes = 8ull << 20;
    small.requireSwapHoldsDump = false;
    CrashRig rig(small);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(20000, 0x44);
    auto fd = vfs.open(rig.proc, "/f", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    rig.crashAndReset();

    core::WarmReboot warm(rig.machine);
    rig.machine.swap().resetStats();
    auto report = warm.dumpAndRestoreMetadata();
    // The failure is recorded and no partial dump is written...
    EXPECT_FALSE(report.recovery.dumpOk);
    EXPECT_EQ(report.recovery.dumpShortfallBytes, 8ull << 20);
    EXPECT_EQ(rig.machine.swap().stats().sectorsWritten, 0u);
    // ...but the metadata restore still runs from the host image.
    EXPECT_GT(report.metadataRestored, 0u);

    // Step 2 has no dump to replay: skipped, not fabricated.
    core::RioOptions options;
    options.protection = rig.config.protection;
    options.maintainChecksums = true;
    rig.rio = std::make_unique<core::RioSystem>(rig.machine, options);
    auto rebooted =
        std::make_unique<os::Kernel>(rig.machine, rig.config);
    rebooted->boot(rig.rio.get(), false);
    warm.restoreData(rebooted->vfs(), report);
    EXPECT_TRUE(report.recovery.dataRestoreSkipped);
    EXPECT_EQ(report.dataPagesRestored, 0u);
}

TEST(WarmReboot, MidUpdateEntryWithoutShadowIsUnrestorable)
{
    CrashRig rig;
    // Dirty the root directory so beginWrite makes a shadow copy.
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(rig.kernel->vfs().open(rig.proc, "/pre" + std::to_string(i),
                               os::OpenFlags::writeOnly()));
    }
    midUpdateCrash(rig);

    const u64 index = changingSlot(rig.machine);
    ASSERT_NE(index, ~0ull);
    // The shadow pointer did not survive: no consistent source left.
    putField<u64>(registrySlot(rig.machine, index),
                  Layout::kOffShadow, 0);

    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.metadataFromShadow, 0u);
    EXPECT_EQ(report.metadataUnrestorable, 1u);
}

TEST(WarmReboot, CorruptedShadowCopyIsQuarantined)
{
    CrashRig rig;
    // Dirty the root directory so beginWrite makes a shadow copy.
    for (int i = 0; i < 3; ++i) {
        rio::wl::tolerate(rig.kernel->vfs().open(rig.proc, "/pre" + std::to_string(i),
                               os::OpenFlags::writeOnly()));
    }
    midUpdateCrash(rig);

    const u64 index = changingSlot(rig.machine);
    ASSERT_NE(index, ~0ull);
    u8 *slot = registrySlot(rig.machine, index);
    ASSERT_NE(getField<u32>(slot, Layout::kOffChecksum), 0u);
    const Addr shadow = getField<u64>(slot, Layout::kOffShadow);
    const u32 block = getField<u32>(slot, Layout::kOffDiskBlock);
    ASSERT_NE(shadow, 0u);
    // The shadow page was scribbled over during the outage: it no
    // longer holds the last consistent contents.
    std::memset(rig.machine.mem().raw() + shadow, 0xCD,
                sim::kPageSize);

    const std::vector<u8> before = diskBlockBytes(rig.machine, block);
    core::WarmReboot hardened(rig.machine);
    auto report = hardened.dumpAndRestoreMetadata();
    EXPECT_EQ(report.recovery.shadowChecksumBad, 1u);
    EXPECT_GE(report.recovery.metadataQuarantined, 1u);
    EXPECT_EQ(report.metadataFromShadow, 0u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block), before);

    // Trusting uses the smashed shadow anyway.
    core::WarmReboot trusting(rig.machine,
                              core::RestorePolicy::trusting());
    auto report2 = trusting.dumpAndRestoreMetadata();
    EXPECT_EQ(report2.metadataFromShadow, 1u);
    EXPECT_EQ(diskBlockBytes(rig.machine, block)[0], 0xCD);
}

TEST(WarmReboot, StaleInodeCounted)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(5000, 0x31);
    auto fd = vfs.open(rig.proc, "/ghost", os::OpenFlags::writeOnly());
    rio::wl::tolerate(vfs.write(rig.proc, fd.value(), data));
    rio::wl::tolerate(vfs.close(rig.proc, fd.value()));
    const InodeNo ino = vfs.stat("/ghost").value().ino;

    rig.crashAndReset();

    // Sabotage: free the inode on disk between the crash and the
    // data restore (as if its metadata never survived).
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    {
        // Zero the inode directly on disk, then fix the tree.
        sim::SimClock clock;
        std::vector<u8> itb(os::Ufs::kBlockSize);
        // Recompute geometry from a fresh boot later; here we just
        // clear every inode-table block copy of that inode type.
        os::Kernel probe(rig.machine, rig.config);
        // (boot runs fsck; afterwards remove the file's dirent so
        // the inode becomes orphaned and is freed on the NEXT fsck)
        core::RioOptions options;
        options.protection = rig.config.protection;
        core::RioSystem rio2(rig.machine, options);
        probe.boot(&rio2, false);
        rio::wl::tolerate(probe.ufs().remove("/ghost"));
        (void)itb;
        (void)clock;
        (void)ino;
        // Now run the data restore against the fs without the file.
        warm.restoreData(probe.vfs(), report);
        EXPECT_GT(report.staleInodes, 0u);
    }
}
