/**
 * @file
 * Tests for the warm reboot: the full dump / metadata-restore /
 * fsck / user-level data-restore pipeline, its dirty-only policy,
 * shadow handling for mid-update crashes, hardware that clears
 * memory, and stale-inode accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/rio.hh"
#include "core/warmreboot.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(bool survives = true)
{
    sim::MachineConfig c;
    c.physMemBytes = 16ull << 20;
    c.kernelHeapBytes = 4ull << 20;
    c.bufPoolBytes = 1ull << 20;
    c.diskBytes = 64ull << 20;
    c.swapBytes = 16ull << 20;
    c.memorySurvivesReset = survives;
    return c;
}

struct CrashRig
{
    explicit CrashRig(bool survives = true)
        : machine(machineConfig(survives))
    {
        config = os::systemPreset(os::SystemPreset::RioNoProtection);
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        kernel = std::make_unique<os::Kernel>(machine, config);
        kernel->boot(rio.get(), true);
    }

    void
    crashAndReset()
    {
        try {
            machine.crash(sim::CrashCause::KernelPanic, "test");
        } catch (const sim::CrashException &) {
        }
        rio->deactivate();
        rio.reset();
        kernel.reset();
        machine.reset(sim::ResetKind::Warm);
    }

    /** Complete the standard recovery; returns the rebooted kernel. */
    std::unique_ptr<os::Kernel>
    recover(core::WarmRebootReport &report)
    {
        core::WarmReboot warm(machine);
        report = warm.dumpAndRestoreMetadata();
        core::RioOptions options;
        options.protection = config.protection;
        options.maintainChecksums = true;
        rio = std::make_unique<core::RioSystem>(machine, options);
        auto rebooted = std::make_unique<os::Kernel>(machine, config);
        rebooted->boot(rio.get(), false);
        warm.restoreData(rebooted->vfs(), report);
        return rebooted;
    }

    sim::Machine machine;
    os::KernelConfig config;
    std::unique_ptr<core::RioSystem> rio;
    std::unique_ptr<os::Kernel> kernel;
    os::Process proc{1};
};

} // namespace

TEST(WarmReboot, RecoversFilesAndDirectories)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    vfs.mkdir("/a");
    vfs.mkdir("/a/b");
    std::vector<u8> data(30000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<u8>(i * 11);
    auto fd = vfs.open(rig.proc, "/a/b/f", os::OpenFlags::writeOnly());
    vfs.write(rig.proc, fd.value(), data);
    vfs.close(rig.proc, fd.value());

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);

    EXPECT_GT(report.metadataRestored, 0u);
    EXPECT_GT(report.dataPagesRestored, 0u);
    EXPECT_EQ(report.staleInodes, 0u);
    EXPECT_EQ(report.corruptEntries, 0u);

    std::vector<u8> out(30000);
    auto rfd = rebooted->vfs().open(rig.proc, "/a/b/f",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    ASSERT_TRUE(rebooted->vfs().read(rig.proc, rfd.value(), out).ok());
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DeletionsSurviveTheCrashToo)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    auto fd = vfs.open(rig.proc, "/doomed", os::OpenFlags::writeOnly());
    std::vector<u8> data(5000, 0x13);
    vfs.write(rig.proc, fd.value(), data);
    vfs.close(rig.proc, fd.value());
    vfs.unlink("/doomed");

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // The file was deleted before the crash; it must stay deleted.
    EXPECT_EQ(rebooted->vfs().stat("/doomed").status(),
              support::OsStatus::NoEnt);
    EXPECT_EQ(report.staleInodes, 0u);
}

TEST(WarmReboot, OverwritesSurvive)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> v1(8192, 0x01), v2(8192, 0x02);
    auto fd = vfs.open(rig.proc, "/ver", os::OpenFlags::writeOnly());
    vfs.write(rig.proc, fd.value(), v1);
    vfs.close(rig.proc, fd.value());
    auto fd2 = vfs.open(rig.proc, "/ver", os::OpenFlags::readWrite());
    vfs.pwrite(rig.proc, fd2.value(), 0, v2);
    vfs.close(rig.proc, fd2.value());

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    std::vector<u8> out(8192);
    auto rfd = rebooted->vfs().open(rig.proc, "/ver",
                                    os::OpenFlags::readOnly());
    rebooted->vfs().read(rig.proc, rfd.value(), out);
    EXPECT_EQ(out, v2);
}

TEST(WarmReboot, CleanPagesAreNotRestored)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(40000, 0x27);
    auto fd = vfs.open(rig.proc, "/flushed",
                       os::OpenFlags::writeOnly());
    vfs.write(rig.proc, fd.value(), data);
    vfs.close(rig.proc, fd.value());
    // Force everything to disk outside the policy (admin action).
    rig.kernel->ufs().syncAll(true);

    rig.crashAndReset();
    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    // Nothing was dirty: nothing to restore, yet the data is there.
    EXPECT_EQ(report.dataPagesRestored, 0u);
    std::vector<u8> out(40000);
    auto rfd = rebooted->vfs().open(rig.proc, "/flushed",
                                    os::OpenFlags::readOnly());
    ASSERT_TRUE(rfd.ok());
    rebooted->vfs().read(rig.proc, rfd.value(), out);
    EXPECT_EQ(out, data);
}

TEST(WarmReboot, DumpLandsOnSwapPartition)
{
    CrashRig rig;
    rig.crashAndReset();
    core::WarmReboot warm(rig.machine);
    rig.machine.swap().resetStats();
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.dumpBytes, rig.machine.mem().size());
    EXPECT_GE(rig.machine.swap().stats().sectorsWritten,
              rig.machine.mem().size() / sim::kSectorSize);
}

TEST(WarmReboot, PcStyleMemoryLossMeansNothingRecovered)
{
    CrashRig rig(/*survives=*/false);
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(10000, 0x09);
    auto fd = vfs.open(rig.proc, "/lost", os::OpenFlags::writeOnly());
    vfs.write(rig.proc, fd.value(), data);
    vfs.close(rig.proc, fd.value());

    rig.crashAndReset(); // Memory is cleared by the reset.
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    EXPECT_EQ(report.entriesSeen, 0u);
    EXPECT_EQ(report.metadataRestored, 0u);
}

TEST(WarmReboot, MidUpdateCrashRestoresShadowCopy)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    for (int i = 0; i < 3; ++i) {
        vfs.open(rig.proc, "/pre" + std::to_string(i),
                 os::OpenFlags::writeOnly());
    }
    // Open a write window on the root directory block and crash
    // inside it.
    auto &ufs = rig.kernel->ufs();
    auto rootInode = ufs.iget(os::Ufs::kRootIno);
    auto block = ufs.bmap(os::Ufs::kRootIno, rootInode.value(), 0,
                          false);
    auto &buf = rig.kernel->bufferCache();
    auto ref = buf.bread(1, block.value());
    try {
        os::BufferCache::WriteWindow window(buf, ref);
        window.store32(0, 0xdeadbeef); // Half-smashed dirent.
        throw sim::CrashException(sim::CrashCause::KernelPanic,
                                  "mid-update",
                                  rig.machine.clock().now());
    } catch (const sim::CrashException &) {
        rig.machine.noteCrash(rig.machine.clock().now());
    }
    rig.rio->deactivate();
    rig.rio.reset();
    rig.kernel.reset();
    rig.machine.reset(sim::ResetKind::Warm);

    core::WarmRebootReport report;
    auto rebooted = rig.recover(report);
    EXPECT_EQ(report.metadataFromShadow, 1u);
    // All three files are reachable: the torn dirent never became
    // visible.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(rebooted->vfs()
                        .stat("/pre" + std::to_string(i))
                        .ok());
    }
    ASSERT_TRUE(rebooted->lastFsck().has_value());
    EXPECT_EQ(rebooted->lastFsck()->badDirents, 0u);
}

TEST(WarmReboot, StaleInodeCounted)
{
    CrashRig rig;
    auto &vfs = rig.kernel->vfs();
    std::vector<u8> data(5000, 0x31);
    auto fd = vfs.open(rig.proc, "/ghost", os::OpenFlags::writeOnly());
    vfs.write(rig.proc, fd.value(), data);
    vfs.close(rig.proc, fd.value());
    const InodeNo ino = vfs.stat("/ghost").value().ino;

    rig.crashAndReset();

    // Sabotage: free the inode on disk between the crash and the
    // data restore (as if its metadata never survived).
    core::WarmReboot warm(rig.machine);
    auto report = warm.dumpAndRestoreMetadata();
    {
        // Zero the inode directly on disk, then fix the tree.
        sim::SimClock clock;
        std::vector<u8> itb(os::Ufs::kBlockSize);
        // Recompute geometry from a fresh boot later; here we just
        // clear every inode-table block copy of that inode type.
        os::Kernel probe(rig.machine, rig.config);
        // (boot runs fsck; afterwards remove the file's dirent so
        // the inode becomes orphaned and is freed on the NEXT fsck)
        core::RioOptions options;
        options.protection = rig.config.protection;
        core::RioSystem rio2(rig.machine, options);
        probe.boot(&rio2, false);
        probe.ufs().remove("/ghost");
        (void)itb;
        (void)clock;
        (void)ino;
        // Now run the data restore against the fs without the file.
        warm.restoreData(probe.vfs(), report);
        EXPECT_GT(report.staleInodes, 0u);
    }
}
