/**
 * @file
 * Tests for the workloads: memTest's model-vs-kernel agreement,
 * Andrew's phases, Sdet's completion, cp+rm's fidelity, and the
 * scheduler.
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/andrew.hh"
#include "workload/cprm.hh"
#include "workload/memtest.hh"
#include "workload/sdet.hh"
#include "workload/script.hh"

using namespace rio;

namespace
{

sim::MachineConfig
machineConfig(u64 seed = 1)
{
    sim::MachineConfig c;
    c.physMemBytes = 32ull << 20;
    c.diskBytes = 96ull << 20;
    c.swapBytes = 32ull << 20;
    c.seed = seed;
    return c;
}

struct Rig
{
    explicit Rig(os::SystemPreset preset = os::SystemPreset::UfsDelayAll,
                 u64 seed = 1)
        : machine(machineConfig(seed)),
          kernel(machine, os::systemPreset(preset))
    {
        kernel.boot(nullptr, true);
    }

    sim::Machine machine;
    os::Kernel kernel;
};

} // namespace

TEST(MemTestWl, ModelAgreesWithKernelAfterManyOps)
{
    Rig rig;
    wl::MemTestConfig config;
    config.seed = 31;
    wl::MemTest memtest(rig.kernel, config);
    memtest.setup();
    for (int op = 0; op < 4000; ++op)
        memtest.step();
    EXPECT_FALSE(memtest.liveMismatchSeen());
    // Verification against the same (healthy, running) kernel must
    // be squeaky clean.
    const auto result = memtest.verify(rig.kernel);
    EXPECT_FALSE(result.corrupt())
        << (result.details.empty() ? std::string()
                                   : result.details.front());
    EXPECT_GT(result.filesChecked, 10u);
}

TEST(MemTestWl, DeterministicAcrossRuns)
{
    auto fingerprint = [](u64 seed) {
        Rig rig(os::SystemPreset::UfsDelayAll, 9);
        wl::MemTestConfig config;
        config.seed = seed;
        wl::MemTest memtest(rig.kernel, config);
        memtest.setup();
        for (int op = 0; op < 1500; ++op)
            memtest.step();
        u64 hash = 1469598103934665603ull;
        for (const auto &[path, bytes] : memtest.model().files()) {
            for (const char c : path)
                hash = (hash ^ static_cast<u8>(c)) * 1099511628211ull;
            hash = (hash ^ bytes.size()) * 1099511628211ull;
        }
        return hash;
    };
    EXPECT_EQ(fingerprint(5), fingerprint(5));
    EXPECT_NE(fingerprint(5), fingerprint(6));
}

TEST(MemTestWl, FileSetStaysWithinBudget)
{
    Rig rig;
    wl::MemTestConfig config;
    config.seed = 17;
    config.maxFileSetBytes = 1 << 20;
    config.maxFiles = 24;
    wl::MemTest memtest(rig.kernel, config);
    memtest.setup();
    for (int op = 0; op < 3000; ++op) {
        memtest.step();
        ASSERT_LE(memtest.model().files().size(),
                  24u + 2 * config.duplicatePairs);
    }
    // The budget may overshoot by at most one op's worth.
    EXPECT_LE(memtest.model().totalBytes(),
              config.maxFileSetBytes + 128 * 1024 +
                  config.duplicatePairs * 2 * config.duplicateBytes);
}

TEST(MemTestWl, VerifyDetectsMissingFile)
{
    Rig rig;
    wl::MemTestConfig config;
    config.seed = 23;
    wl::MemTest memtest(rig.kernel, config);
    memtest.setup();
    for (int op = 0; op < 500; ++op)
        memtest.step();
    // Sabotage the kernel behind memTest's back.
    const auto &files = memtest.model().files();
    ASSERT_FALSE(files.empty());
    std::string victim;
    for (const auto &[path, bytes] : files) {
        if (path.find("/dup") == std::string::npos) {
            victim = path;
            break;
        }
    }
    ASSERT_FALSE(victim.empty());
    ASSERT_TRUE(rig.kernel.vfs().unlink(victim).ok());
    const auto result = memtest.verify(rig.kernel);
    EXPECT_TRUE(result.corrupt());
    EXPECT_GE(result.missingFiles, 1u);
}

TEST(MemTestWl, VerifyDetectsContentCorruption)
{
    Rig rig;
    wl::MemTestConfig config;
    config.seed = 29;
    wl::MemTest memtest(rig.kernel, config);
    memtest.setup();
    for (int op = 0; op < 500; ++op)
        memtest.step();
    std::string victim;
    for (const auto &[path, bytes] : memtest.model().files()) {
        if (bytes.size() > 100 &&
            path.find("/dup") == std::string::npos) {
            victim = path;
            break;
        }
    }
    ASSERT_FALSE(victim.empty());
    const InodeNo ino = rig.kernel.vfs().stat(victim).value().ino;
    std::vector<u8> garbage(16, 0xdb);
    ASSERT_TRUE(
        rig.kernel.vfs().restoreDataByIno(ino, 10, garbage).ok());
    const auto result = memtest.verify(rig.kernel);
    EXPECT_GE(result.contentMismatches, 1u);
}

TEST(AndrewWl, RunsToCompletionThroughAllPhases)
{
    Rig rig;
    wl::AndrewConfig config;
    config.files = 20;
    config.dirs = 5;
    wl::Andrew andrew(rig.kernel, config);
    u64 steps = 0;
    while (andrew.step())
        ASSERT_LT(++steps, 100000u);
    // Sources and objects exist.
    EXPECT_TRUE(rig.kernel.ufs().namei("/andrew/dir0/src0.c").ok());
    EXPECT_TRUE(rig.kernel.ufs().namei("/andrew/dir0/src0.o").ok());
}

TEST(AndrewWl, CompileDominatesRuntime)
{
    // The paper: Andrew is dominated by CPU-intensive compilation.
    Rig rig;
    wl::AndrewConfig config;
    config.files = 20;
    config.dirs = 5;
    wl::Andrew andrew(rig.kernel, config);
    const double start = rig.machine.clock().seconds();
    while (andrew.step()) {
    }
    const double total = rig.machine.clock().seconds() - start;
    const double compileFloor =
        static_cast<double>(config.files) *
        static_cast<double>(config.compileNsPerFile) / 1e9;
    EXPECT_GT(compileFloor, total * 0.3);
}

TEST(AndrewWl, LoopModeCleansUpAndRestarts)
{
    Rig rig;
    wl::AndrewConfig config;
    config.files = 6;
    config.dirs = 2;
    config.loop = true;
    config.compileNsPerFile = 1'000'000;
    wl::Andrew andrew(rig.kernel, config);
    for (int step = 0; step < 5000 && andrew.generationsCompleted() < 2;
         ++step) {
        ASSERT_TRUE(andrew.step());
    }
    EXPECT_GE(andrew.generationsCompleted(), 2u);
}

TEST(SdetWl, AllScriptsComplete)
{
    Rig rig;
    wl::SdetConfig config;
    config.scripts = 3;
    config.iterations = 2;
    config.filesPerIteration = 8;
    const double seconds = wl::runSdet(rig.kernel, config);
    EXPECT_GT(seconds, 0.0);
    // Every script removed its files and tore down its directory.
    auto listing = rig.kernel.vfs().readdir("/sdet");
    ASSERT_TRUE(listing.ok());
    EXPECT_TRUE(listing.value().empty());
}

TEST(CpRmWl, CopyIsFaithful)
{
    Rig rig;
    wl::CpRmConfig config;
    config.totalBytes = 2ull << 20;
    wl::CpRm cprm(rig.kernel, config);
    cprm.buildSourceTree();

    // Interrupt the workload between phases: copy manually, compare
    // one file, then let rm run.
    auto &vfs = rig.kernel.vfs();
    os::Process proc(9);
    const auto result = cprm.run();
    EXPECT_GT(result.copySeconds, 0.0);
    EXPECT_GT(result.rmSeconds, 0.0);
    // After rm, the copy is gone but the source remains.
    EXPECT_FALSE(vfs.stat("/copy").ok());
    auto src = vfs.readdir("/usr_src");
    ASSERT_TRUE(src.ok());
    EXPECT_FALSE(src.value().empty());
    (void)proc;
}

TEST(CpRmWl, CopiedBytesMatchSource)
{
    Rig rig;
    wl::CpRmConfig config;
    config.totalBytes = 1ull << 20;
    wl::CpRm cprm(rig.kernel, config);
    cprm.buildSourceTree();

    // Run the copy phase only by copying rm's preconditions: run()
    // does both, so instead compare against the source afterwards
    // using a second copy.
    auto &vfs = rig.kernel.vfs();
    os::Process proc(9);
    // Find one source file.
    std::string dir, file;
    auto top = vfs.readdir("/usr_src");
    ASSERT_TRUE(top.ok());
    for (const auto &entry : top.value()) {
        auto sub = vfs.readdir("/usr_src/" + entry.name);
        if (!sub.ok())
            continue;
        for (const auto &inner : sub.value()) {
            if (inner.type == os::FileType::Regular) {
                dir = entry.name;
                file = inner.name;
                break;
            }
        }
        if (!file.empty())
            break;
    }
    ASSERT_FALSE(file.empty());

    const std::string path = "/usr_src/" + dir + "/" + file;
    auto st = vfs.stat(path);
    std::vector<u8> bytes(st.value().size);
    auto fd = vfs.open(proc, path, os::OpenFlags::readOnly());
    ASSERT_TRUE(vfs.read(proc, fd.value(), bytes).ok());
    rio::wl::tolerate(vfs.close(proc, fd.value()));
    EXPECT_GT(bytes.size(), 0u);
    // Contents are the deterministic pattern (first byte nonzero for
    // almost all patterns is not guaranteed; just re-derive).
    std::vector<u8> expected(bytes.size());
    wl::fillPattern(expected, config.seed * 131 + bytes.size());
    EXPECT_EQ(bytes, expected);
}

TEST(SchedulerWl, RoundRobinInterleavesScripts)
{
    struct Counter : wl::Script
    {
        explicit Counter(int limit) : limit(limit) {}
        bool
        step() override
        {
            order->push_back(id);
            return ++count < limit;
        }
        std::string name() const override { return "counter"; }
        int id = 0;
        int count = 0;
        int limit;
        std::vector<int> *order = nullptr;
    };

    std::vector<int> order;
    Counter a(3), b(2);
    a.id = 1;
    a.order = &order;
    b.id = 2;
    b.order = &order;
    wl::Scheduler scheduler;
    scheduler.add(a);
    scheduler.add(b);
    EXPECT_TRUE(scheduler.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

TEST(SchedulerWl, HookCanStopEarly)
{
    struct Forever : wl::Script
    {
        bool
        step() override
        {
            ++steps;
            return true;
        }
        std::string name() const override { return "forever"; }
        int steps = 0;
    };
    Forever script;
    wl::Scheduler scheduler;
    scheduler.add(script);
    int budget = 10;
    scheduler.setBetweenSteps([&] { return --budget > 0; });
    EXPECT_FALSE(scheduler.run());
    EXPECT_EQ(script.steps, 9);
}
