#!/usr/bin/env python3
"""Gated clang-tidy runner.

Runs a curated set of concurrency-* and bugprone-* checks over the
kernel sources and compares the resulting diagnostics against a
committed baseline, so clang-tidy can gate CI without a flag day:
pre-existing findings live in the baseline, and the job fails only
when a *new* fingerprint appears.

A fingerprint is `<repo-relative-path>:<check-name>` — deliberately
line-insensitive so unrelated edits that shift line numbers do not
invalidate the baseline, while any new (file, check) pair trips the
gate.

Usage:
    python3 tools/ci/clang_tidy_gate.py --build-dir build-lint
    python3 tools/ci/clang_tidy_gate.py --build-dir build-lint --update

The build dir must have been configured with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON. `--update` regenerates the
baseline in place; commit the result with an explanation of the
accepted findings.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

# Curated: every concurrency check, plus the bugprone checks that
# matter for a crash-injecting simulator (lifetime bugs that ASan
# only catches when a test happens to reach them).
DEFAULT_CHECKS = ",".join(
    [
        "-*",
        "concurrency-*",
        "bugprone-use-after-move",
        "bugprone-dangling-handle",
        "bugprone-infinite-loop",
        "bugprone-sizeof-expression",
        "bugprone-suspicious-semicolon",
        "bugprone-copy-constructor-init",
        "bugprone-undefined-memory-manipulation",
    ]
)

DEFAULT_ROOTS = ["src", "tools/riolint", "bench", "examples"]

DIAG_RE = re.compile(
    r"^(?P<path>/[^:]+):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s.*\[(?P<checks>[A-Za-z0-9.,_-]+)\]\s*$"
)


def listSources(buildDir, repoRoot, roots):
    dbPath = os.path.join(buildDir, "compile_commands.json")
    if not os.path.isfile(dbPath):
        sys.exit(
            f"error: {dbPath} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    with open(dbPath, encoding="utf-8") as db:
        entries = json.load(db)
    prefixes = [os.path.join(repoRoot, r) + os.sep for r in roots]
    files = sorted(
        {
            os.path.realpath(e["file"])
            for e in entries
            if any(os.path.realpath(e["file"]).startswith(p) for p in prefixes)
        }
    )
    return files


def runTidy(tidy, buildDir, checks, path):
    proc = subprocess.run(
        [tidy, "-p", buildDir, f"-checks={checks}", "--quiet", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    return proc.stdout


def fingerprints(output, repoRoot):
    found = set()
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        rel = os.path.relpath(m.group("path"), repoRoot)
        if rel.startswith(".."):
            continue  # diagnostics from system headers
        for check in m.group("checks").split(","):
            found.add(f"{rel}:{check}")
    return found


def readBaseline(path):
    if not os.path.isfile(path):
        return set()
    entries = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def writeBaseline(path, entries):
    with open(path, "w", encoding="utf-8") as f:
        f.write(
            "# clang-tidy baseline: accepted `path:check` fingerprints.\n"
            "# Regenerate with:\n"
            "#   python3 tools/ci/clang_tidy_gate.py"
            " --build-dir build-lint --update\n"
            "# New findings not listed here fail CI.\n"
        )
        for entry in sorted(entries):
            f.write(entry + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument(
        "--baseline", default="tools/ci/clang_tidy_baseline.txt"
    )
    parser.add_argument("--checks", default=DEFAULT_CHECKS)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--update", action="store_true")
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        sys.exit(f"error: {args.clang_tidy} not found on PATH")

    repoRoot = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )
    files = listSources(args.build_dir, repoRoot, DEFAULT_ROOTS)
    if not files:
        sys.exit("error: no sources matched the compile database")
    print(f"clang-tidy gate: {len(files)} files, checks={args.checks}")

    current = set()
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        outputs = pool.map(
            lambda f: runTidy(
                args.clang_tidy, args.build_dir, args.checks, f
            ),
            files,
        )
        for out in outputs:
            current |= fingerprints(out, repoRoot)

    baselinePath = os.path.join(repoRoot, args.baseline)
    if args.update:
        writeBaseline(baselinePath, current)
        print(f"baseline updated: {len(current)} fingerprints")
        return 0

    baseline = readBaseline(baselinePath)
    fresh = sorted(current - baseline)
    stale = sorted(baseline - current)
    for entry in stale:
        print(f"note: baseline entry no longer reported: {entry}")
    if stale:
        print("note: run with --update to shrink the baseline")
    if fresh:
        print(f"FAIL: {len(fresh)} new clang-tidy finding(s):")
        for entry in fresh:
            print(f"  {entry}")
        return 1
    print(f"OK: no new findings ({len(current)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
