#include "callgraph.hh"

#include <algorithm>
#include <cctype>

namespace riolint
{

namespace
{

bool
parseRuleId(const std::string &id, Rule &out)
{
    static const std::pair<const char *, Rule> kIds[] = {
        {"R1", Rule::R1CheckedStore},
        {"R2", Rule::R2Determinism},
        {"R3", Rule::R3LockOrder},
        {"R4", Rule::R4ErrorFlow},
        {"R5", Rule::R5RegistryMutation},
        {"R6", Rule::R6ShadowProtocol},
        {"R7", Rule::R7DeadlockCycle},
        {"R8", Rule::R8CrashWhileLocked},
        {"R9", Rule::R9JournalTx},
    };
    for (const auto &[name, rule] : kIds) {
        if (id == name) {
            out = rule;
            return true;
        }
    }
    return false;
}

std::string
trimmed(std::string text)
{
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())))
        text.erase(text.begin());
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back())))
        text.pop_back();
    return text;
}

/** Pull riolint:allow(R<n>) <reason> annotations out of a comment. */
void
harvestAllows(const std::string &comment, int line, Scan &scan)
{
    static const std::string kTag = "riolint:allow(";
    std::size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        const std::size_t idStart = at + kTag.size();
        const std::size_t close = comment.find(')', idStart);
        if (close == std::string::npos)
            return;
        Rule rule;
        if (parseRuleId(comment.substr(idStart, close - idStart),
                        rule)) {
            scan.notes[line].push_back(
                {rule, trimmed(comment.substr(close + 1))});
        }
        at = close;
    }
}

/** Pull riolint:rank(name, N) lock-rank declarations. */
void
harvestRanks(const std::string &comment, int line, Scan &scan)
{
    static const std::string kTag = "riolint:rank(";
    std::size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        const std::size_t argStart = at + kTag.size();
        const std::size_t close = comment.find(')', argStart);
        if (close == std::string::npos)
            return;
        const std::string args =
            comment.substr(argStart, close - argStart);
        const std::size_t comma = args.find(',');
        if (comma != std::string::npos) {
            const std::string name = trimmed(args.substr(0, comma));
            const std::string num = trimmed(args.substr(comma + 1));
            if (!name.empty() && !num.empty() &&
                std::all_of(num.begin(), num.end(), [](char c) {
                    return std::isdigit(
                        static_cast<unsigned char>(c));
                })) {
                scan.ranks.push_back(
                    {name, std::stoi(num), line});
            }
        }
        at = close;
    }
}

void
harvestAnnotations(const std::string &comment, int line, Scan &scan)
{
    harvestAllows(comment, line, scan);
    harvestRanks(comment, line, scan);
}

const std::set<std::string> &
keywordSet()
{
    static const std::set<std::string> kKeywords = {
        "if",       "while",     "for",       "switch",
        "catch",    "return",    "sizeof",    "alignof",
        "new",      "delete",    "throw",     "static_assert",
        "decltype", "noexcept",  "alignas",   "requires",
        "co_return", "co_await", "co_yield",  "assert",
        "const",    "constexpr", "static",    "inline",
        "void",     "auto",      "bool",      "int",
        "char",     "unsigned",  "long",      "short",
        "double",   "float",     "this",      "operator",
        "else",     "do",        "case",      "default",
        "break",    "continue",  "goto",      "try",
        "using",    "namespace", "template",  "typename",
        "public",   "private",   "protected", "virtual",
        "explicit", "friend",    "typedef",   "enum",
        "class",    "struct",    "union",     "true",
        "false",    "nullptr",
    };
    return kKeywords;
}

} // namespace

Scan
tokenize(const std::string &src)
{
    Scan scan;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto peek = [&](std::size_t off) -> char {
        return i + off < n ? src[i + off] : '\0';
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            const std::size_t end = src.find('\n', i);
            const std::size_t stop = end == std::string::npos ? n : end;
            harvestAnnotations(src.substr(i, stop - i), line, scan);
            i = stop;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            std::size_t j = i + 2;
            int commentLine = line;
            std::string text;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n') {
                    harvestAnnotations(text, commentLine, scan);
                    text.clear();
                    ++line;
                    commentLine = line;
                } else {
                    text.push_back(src[j]);
                }
                ++j;
            }
            harvestAnnotations(text, commentLine, scan);
            i = j + 2 < n ? j + 2 : n;
            continue;
        }
        if (c == '"' || c == '\'') {
            // Raw strings: R"delim( ... )delim"
            if (c == '"' && i > 0 && src[i - 1] == 'R' &&
                !scan.toks.empty() && scan.toks.back().text == "R") {
                const std::size_t open = src.find('(', i);
                std::string delim =
                    src.substr(i + 1, open - (i + 1));
                const std::string closer = ")" + delim + "\"";
                std::size_t end = src.find(closer, open);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                line += static_cast<int>(
                    std::count(src.begin() + static_cast<long>(i),
                               src.begin() + static_cast<long>(end),
                               '\n'));
                scan.toks.back() = {"\"\"", line, 's'};
                i = end;
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            scan.toks.push_back({std::string(1, c) + "...", line, 's'});
            i = j + 1;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_')) {
                ++j;
            }
            scan.toks.push_back({src.substr(i, j - i), line, 'i'});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '.' || src[j] == '\'')) {
                ++j;
            }
            scan.toks.push_back({src.substr(i, j - i), line, 'n'});
            i = j;
            continue;
        }
        // Multi-char punctuation the rules care about.
        static const char *kDigraphs[] = {"::", "->", "[[", "]]"};
        bool matched = false;
        for (const char *d : kDigraphs) {
            if (c == d[0] && peek(1) == d[1]) {
                scan.toks.push_back({d, line, 'p'});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        scan.toks.push_back({std::string(1, c), line, 'p'});
        ++i;
    }
    return scan;
}

// ---------------------------------------------------------------------
// AllowMap
// ---------------------------------------------------------------------

AllowMap::AllowMap(const Scan &scan)
{
    for (const Tok &tok : scan.toks)
        codeLines_.insert(tok.line);
    for (const auto &[line, notes] : scan.notes) {
        const int covered = coveredLine(line);
        if (covered < 0)
            continue;
        for (const Annotation &note : notes)
            byLine_[covered].push_back(note);
    }
}

int
AllowMap::coveredLine(int line) const
{
    if (codeLines_.count(line))
        return line;
    auto next = codeLines_.upper_bound(line);
    return next == codeLines_.end() ? -1 : *next;
}

const Annotation *
AllowMap::lookup(int line, Rule rule) const
{
    auto it = byLine_.find(line);
    if (it == byLine_.end())
        return nullptr;
    for (const Annotation &note : it->second) {
        if (note.rule == rule)
            return &note;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// CallGraph
// ---------------------------------------------------------------------

CallGraph::CallGraph(const std::vector<SourceFile> &files)
    : files_(files)
{
    for (const SourceFile &file : files_)
        collectClasses(file);
    for (std::size_t i = 0; i < files_.size(); ++i)
        collectFunctions(i);
    for (const SourceFile &file : files_)
        collectVarTypes(file);
    for (std::size_t f = 0; f < fns_.size(); ++f) {
        collectCalls(fns_[f]);
        byLast_[fns_[f].name].push_back(f);
        byQualified_.emplace(fns_[f].qualified, f);
    }
    markCalled();
}

void
CallGraph::collectClasses(const SourceFile &file)
{
    const auto &toks = file.scan.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != 'i' ||
            (toks[i].text != "class" && toks[i].text != "struct"))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].text == "[[") {
            while (j < toks.size() && toks[j].text != "]]")
                ++j;
            ++j;
        }
        if (j < toks.size() && toks[j].kind == 'i')
            classes_.insert(toks[j].text);
    }
}

std::size_t
matchForward(const std::vector<Tok> &toks, std::size_t open)
{
    const std::string opener = toks[open].text;
    const std::string closer =
        opener == "(" ? ")" : (opener == "[" ? "]" : "}");
    int bal = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == opener)
            ++bal;
        else if (toks[j].text == closer && --bal == 0)
            return j;
    }
    return toks.size();
}

void
CallGraph::collectFunctions(std::size_t fileIndex)
{
    const auto &toks = files_[fileIndex].scan.toks;
    const auto &keywords = keywordSet();

    struct ClassCtx
    {
        std::string name;
        int depth;
    };
    std::vector<ClassCtx> classStack;
    std::string pendingClass;
    int depth = 0;

    std::size_t i = 0;
    while (i < toks.size()) {
        const Tok &t = toks[i];
        if (t.kind == 'i' &&
            (t.text == "class" || t.text == "struct")) {
            std::size_t j = i + 1;
            while (j < toks.size() && toks[j].text == "[[") {
                while (j < toks.size() && toks[j].text != "]]")
                    ++j;
                ++j;
            }
            if (j < toks.size() && toks[j].kind == 'i') {
                const std::string name = toks[j].text;
                std::size_t k = j + 1;
                if (k < toks.size() && toks[k].text == "final")
                    ++k;
                if (k < toks.size() && toks[k].text == ":") {
                    while (k < toks.size() && toks[k].text != "{" &&
                           toks[k].text != ";")
                        ++k;
                }
                if (k < toks.size() && toks[k].text == "{")
                    pendingClass = name;
            }
            ++i;
            continue;
        }
        if (t.text == "{") {
            ++depth;
            if (!pendingClass.empty()) {
                classStack.push_back({pendingClass, depth});
                pendingClass.clear();
            }
            ++i;
            continue;
        }
        if (t.text == "}") {
            if (!classStack.empty() &&
                classStack.back().depth == depth)
                classStack.pop_back();
            --depth;
            ++i;
            continue;
        }

        if (t.kind != 'i' || i + 1 >= toks.size() ||
            toks[i + 1].text != "(" || keywords.count(t.text)) {
            ++i;
            continue;
        }

        // Candidate definition header: parse the name chain
        // backwards (Class::name, ~dtor) and check whether a body
        // follows the parameter list.
        std::vector<std::string> quals;
        std::string fname = t.text;
        std::size_t head = i;
        if (head > 0 && toks[head - 1].text == "~") {
            fname = "~" + fname;
            --head;
        }
        while (head >= 2 && toks[head - 1].text == "::" &&
               toks[head - 2].kind == 'i') {
            quals.insert(quals.begin(), toks[head - 2].text);
            head -= 2;
        }

        const std::size_t close = matchForward(toks, i + 1);
        std::size_t j = close + 1;
        bool isDef = false;
        while (j < toks.size()) {
            const std::string &w = toks[j].text;
            if (w == "const" || w == "override" || w == "final" ||
                w == "mutable" || w == "&") {
                ++j;
                continue;
            }
            if (w == "noexcept") {
                ++j;
                if (j < toks.size() && toks[j].text == "(")
                    j = matchForward(toks, j) + 1;
                continue;
            }
            if (w == "->") {
                // Trailing return type.
                ++j;
                while (j < toks.size() && toks[j].text != "{" &&
                       toks[j].text != ";" && toks[j].text != "=")
                    ++j;
                continue;
            }
            if (w == ":") {
                // Constructor initializer list: member(args) or
                // member{args} groups separated by commas.
                ++j;
                bool ok = true;
                while (j < toks.size()) {
                    while (j < toks.size() &&
                           (toks[j].kind == 'i' ||
                            toks[j].text == "::" ||
                            toks[j].text == "<" ||
                            toks[j].text == ">"))
                        ++j;
                    if (j >= toks.size() ||
                        (toks[j].text != "(" &&
                         toks[j].text != "{")) {
                        ok = false;
                        break;
                    }
                    j = matchForward(toks, j) + 1;
                    if (j < toks.size() && toks[j].text == ",") {
                        ++j;
                        continue;
                    }
                    break;
                }
                if (!ok || j >= toks.size() || toks[j].text != "{")
                    j = toks.size();
                continue;
            }
            if (w == "{")
                isDef = true;
            break;
        }

        if (!isDef || j >= toks.size()) {
            ++i;
            continue;
        }

        Function fn;
        fn.name = fname;
        std::vector<std::string> path;
        if (!quals.empty()) {
            path = quals;
            for (const std::string &q : quals)
                classes_.insert(q);
        } else {
            for (const ClassCtx &c : classStack)
                path.push_back(c.name);
        }
        fn.className = path.empty() ? "" : path.back();
        path.push_back(fn.name);
        std::string qualified;
        for (const std::string &part : path) {
            if (!qualified.empty())
                qualified += "::";
            qualified += part;
        }
        fn.qualified = std::move(qualified);
        fn.fileIndex = fileIndex;
        fn.line = t.line;
        fn.bodyBegin = j;
        fn.bodyEnd = matchForward(toks, j);
        const std::size_t resume = fn.bodyEnd;
        fns_.push_back(std::move(fn));
        i = resume >= toks.size() ? toks.size() : resume + 1;
    }
}

void
CallGraph::collectVarTypes(const SourceFile &file)
{
    const auto &toks = file.scan.toks;
    const auto &keywords = keywordSet();

    auto skipAngles = [&](std::size_t open,
                          std::string *lastIdent) -> std::size_t {
        // Bounded: '<' may be a comparison, not a template list.
        int d = 0;
        const std::size_t limit =
            std::min(toks.size(), open + 40);
        for (std::size_t j = open; j < limit; ++j) {
            if (toks[j].text == "<") {
                ++d;
            } else if (toks[j].text == ">") {
                if (--d == 0)
                    return j + 1;
            } else if (toks[j].kind == 'i' && lastIdent) {
                *lastIdent = toks[j].text;
            } else if (toks[j].text == ";" || toks[j].text == "{") {
                break;
            }
        }
        return toks.size();
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != 'i')
            continue;
        std::string cls;
        std::size_t j = 0;
        if ((t.text == "unique_ptr" || t.text == "shared_ptr") &&
            toks[i + 1].text == "<") {
            std::string pointee;
            j = skipAngles(i + 1, &pointee);
            cls = pointee;
        } else if (classes_.count(t.text)) {
            cls = t.text;
            j = i + 1;
            if (j < toks.size() && toks[j].text == "<")
                j = skipAngles(j, nullptr);
        } else {
            continue;
        }
        if (cls.empty() || j >= toks.size())
            continue;
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*"))
            ++j;
        if (j + 1 >= toks.size() || toks[j].kind != 'i' ||
            keywords.count(toks[j].text))
            continue;
        const std::string &nxt = toks[j + 1].text;
        if (nxt != ";" && nxt != "=" && nxt != "," && nxt != ")" &&
            nxt != "{" && nxt != "(")
            continue;
        const std::string &var = toks[j].text;
        auto it = varTypes_.find(var);
        if (it == varTypes_.end())
            varTypes_.emplace(var, cls);
        else if (it->second != cls)
            it->second.clear(); // Conflicting declarations: unknown.
    }
}

void
CallGraph::collectCalls(Function &fn)
{
    const auto &toks = files_[fn.fileIndex].scan.toks;
    static const std::set<std::string> kCallAfterKeyword = {
        "return", "throw", "else", "do", "co_return",
    };
    const auto &keywords = keywordSet();

    for (std::size_t k = fn.bodyBegin + 1;
         k + 1 < toks.size() && k < fn.bodyEnd; ++k) {
        const Tok &t = toks[k];
        if (t.kind != 'i' || toks[k + 1].text != "(" ||
            keywords.count(t.text))
            continue;
        const Tok &prev = toks[k - 1];
        CallSite cs;
        cs.name = t.text;
        cs.tokIndex = k;
        cs.line = t.line;
        if (prev.text == "." || prev.text == "->") {
            cs.link = prev.text == "." ? '.' : '>';
            if (k >= 2 && toks[k - 2].kind == 'i')
                cs.receiver = toks[k - 2].text;
            else
                cs.receiver = "<expr>";
        } else if (prev.text == "::") {
            if (k < 2 || toks[k - 2].kind != 'i')
                continue;
            cs.link = ':';
            cs.receiver = toks[k - 2].text;
        } else if (prev.text == "~") {
            continue; // Explicit destructor call.
        } else if (prev.kind == 'i') {
            // `Type name(...)` is a declaration, not a call; only
            // keyword-led positions (`return f()`) are calls.
            if (!kCallAfterKeyword.count(prev.text))
                continue;
            cs.link = 'u';
        } else {
            cs.link = 'u';
        }
        fn.calls.push_back(std::move(cs));
    }
}

void
CallGraph::markCalled()
{
    for (const Function &fn : fns_) {
        for (const CallSite &call : fn.calls) {
            for (std::size_t target : resolve(fn, call))
                called_.insert(target);
        }
    }
}

std::string
CallGraph::receiverType(const std::string &var) const
{
    auto it = varTypes_.find(var);
    return it == varTypes_.end() ? std::string() : it->second;
}

std::vector<std::size_t>
CallGraph::resolve(const Function &caller, const CallSite &call) const
{
    auto it = byLast_.find(call.name);
    if (it == byLast_.end())
        return {};
    const std::vector<std::size_t> &cands = it->second;

    auto inClass = [&](const std::string &cls) {
        std::vector<std::size_t> out;
        for (std::size_t f : cands) {
            if (fns_[f].className == cls)
                out.push_back(f);
        }
        return out;
    };

    if (call.link == ':') {
        // Explicit qualification: only the named class counts
        // (std:: and friends resolve to nothing, correctly).
        return inClass(call.receiver);
    }
    if (call.link == '.' || call.link == '>') {
        const std::string cls = call.receiver == "this"
                                    ? caller.className
                                    : receiverType(call.receiver);
        if (!cls.empty()) {
            auto exact = inClass(cls);
            if (!exact.empty())
                return exact;
        }
        // Interface receiver or unknown type: union over every
        // definition with this name (virtual-dispatch sound).
        return cands;
    }
    // Bare call: prefer the caller's own class, else the union.
    auto own = inClass(caller.className);
    if (!own.empty())
        return own;
    return cands;
}

} // namespace riolint
