/**
 * @file
 * riolint program model: tokenizer, annotations, and the
 * whole-program call graph.
 *
 * The tokenizer and the `riolint:allow` annotation machinery used to
 * live inside lint.cc; they moved here when riolint grew from a
 * per-file pass into a whole-program analysis. On top of the token
 * stream this header builds:
 *
 *  - Function definitions with qualified names (class-body inline
 *    definitions, out-of-line `Class::name` definitions, constructors
 *    and destructors), each carrying its body token range;
 *  - Call sites inside every body, tagged with the receiver
 *    expression (`x.f()`, `p->f()`, `Class::f()`, bare `f()`);
 *  - A receiver-type map harvested from declarations (`Type &x`,
 *    `Type *x`, `std::unique_ptr<Type> x`), so `x->f()` resolves to
 *    `Type::f` when that definition exists;
 *  - Resolution from a call site to candidate definitions. Virtual
 *    dispatch through an interface falls back to the union of all
 *    definitions sharing the last name — a deliberate
 *    over-approximation that keeps the interprocedural rules sound.
 *
 * It is still a tokenizer, not a compiler: zero dependencies, tuned
 * to this codebase's idiom, and honest about its approximations.
 */

#ifndef RIOLINT_CALLGRAPH_HH
#define RIOLINT_CALLGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace riolint
{

struct Tok
{
    std::string text;
    int line = 0;
    char kind = 'p'; ///< 'i' ident, 'n' number, 's' string, 'p' punct.
};

struct Annotation
{
    Rule rule;
    std::string reason;
};

/** A `// riolint:rank(name, N)` lock-rank declaration. */
struct RankNote
{
    std::string lock;
    int rank = 0;
    int line = 0;
};

struct Scan
{
    std::vector<Tok> toks;
    /** Line -> allow annotations written on that line's comments. */
    std::map<int, std::vector<Annotation>> notes;
    /** Lock-rank declarations found in this file's comments. */
    std::vector<RankNote> ranks;
};

Scan tokenize(const std::string &src);

/** Index of the token matching the opener at @p open ('(', '{' or
 * '['), or toks.size() when unbalanced. Only the opener's own kind
 * is counted, so braces inside parens (default arguments) do not
 * disturb paren matching. */
std::size_t matchForward(const std::vector<Tok> &toks,
                         std::size_t open);

/**
 * Maps each code line to the annotations covering it. An annotation
 * covers the line it is written on; when that line carries no code,
 * it covers the next line that does (so a multi-line explanatory
 * comment above the offending statement works naturally).
 */
class AllowMap
{
  public:
    explicit AllowMap(const Scan &scan);

    /** Returns the annotation for (line, rule), or nullptr. */
    const Annotation *lookup(int line, Rule rule) const;

    /** The code line a comment written on @p line covers (the line
     * itself when it carries code, else the next code line; -1 when
     * no code follows). Shared with the rank-annotation binding. */
    int coveredLine(int line) const;

  private:
    std::map<int, std::vector<Annotation>> byLine_;
    std::set<int> codeLines_;
};

struct SourceFile
{
    std::string path;
    Scan scan;
};

struct CallSite
{
    std::string name;     ///< Last identifier of the callee.
    std::string receiver; ///< Var name, "this", class qualifier, "".
    char link = 'u';      ///< '.', '>' (->), ':' (::), 'u' bare.
    std::size_t tokIndex = 0;
    int line = 0;
};

struct Function
{
    std::string qualified; ///< E.g. "BufferCache::WriteWindow::bump".
    std::string name;      ///< Last component; "~X" for destructors.
    std::string className; ///< Innermost enclosing class, or "".
    std::size_t fileIndex = 0;
    int line = 0;
    std::size_t bodyBegin = 0; ///< Token index of the body '{'.
    std::size_t bodyEnd = 0;   ///< Token index of the matching '}'.
    std::vector<CallSite> calls;
};

class CallGraph
{
  public:
    explicit CallGraph(const std::vector<SourceFile> &files);

    const std::vector<Function> &functions() const { return fns_; }
    const SourceFile &file(std::size_t i) const { return files_[i]; }
    std::size_t fileCount() const { return files_.size(); }

    /** Candidate definitions for a call site, by index into
     * functions(). Empty when the callee is not defined in the
     * scanned program (library calls). */
    std::vector<std::size_t> resolve(const Function &caller,
                                     const CallSite &call) const;

    /** True when at least one scanned call site resolves to @p fn. */
    bool hasCallers(std::size_t fn) const
    {
        return called_.count(fn) > 0;
    }

    /** Static type of a receiver variable, or "" when unknown or
     * conflicting across the program. */
    std::string receiverType(const std::string &var) const;

  private:
    const std::vector<SourceFile> &files_;
    std::vector<Function> fns_;
    std::set<std::string> classes_;
    std::map<std::string, std::string> varTypes_;
    std::map<std::string, std::vector<std::size_t>> byLast_;
    std::map<std::string, std::size_t> byQualified_;
    std::set<std::size_t> called_;

    void collectClasses(const SourceFile &file);
    void collectFunctions(std::size_t fileIndex);
    void collectVarTypes(const SourceFile &file);
    void collectCalls(Function &fn);
    void markCalled();
};

} // namespace riolint

#endif // RIOLINT_CALLGRAPH_HH
