#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace riolint
{

namespace
{

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

struct Tok
{
    std::string text;
    int line = 0;
    char kind = 'p'; ///< 'i' ident, 'n' number, 's' string, 'p' punct.
};

struct Annotation
{
    Rule rule;
    std::string reason;
};

struct Scan
{
    std::vector<Tok> toks;
    /** Line -> annotations written on that line's comments. */
    std::map<int, std::vector<Annotation>> notes;
};

bool
parseRuleId(const std::string &id, Rule &out)
{
    static const std::pair<const char *, Rule> kIds[] = {
        {"R1", Rule::R1CheckedStore},   {"R2", Rule::R2Determinism},
        {"R3", Rule::R3LockOrder},      {"R4", Rule::R4ErrorFlow},
        {"R5", Rule::R5RegistryMutation},
        {"R6", Rule::R6ShadowProtocol},
    };
    for (const auto &[name, rule] : kIds) {
        if (id == name) {
            out = rule;
            return true;
        }
    }
    return false;
}

/** Pull riolint:allow(R<n>) <reason> annotations out of a comment. */
void
harvestAnnotations(const std::string &comment, int line, Scan &scan)
{
    static const std::string kTag = "riolint:allow(";
    std::size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        const std::size_t idStart = at + kTag.size();
        const std::size_t close = comment.find(')', idStart);
        if (close == std::string::npos)
            return;
        Rule rule;
        if (parseRuleId(comment.substr(idStart, close - idStart),
                        rule)) {
            std::string reason = comment.substr(close + 1);
            while (!reason.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       reason.front()))) {
                reason.erase(reason.begin());
            }
            while (!reason.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       reason.back()))) {
                reason.pop_back();
            }
            scan.notes[line].push_back({rule, std::move(reason)});
        }
        at = close;
    }
}

Scan
tokenize(const std::string &src)
{
    Scan scan;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto peek = [&](std::size_t off) -> char {
        return i + off < n ? src[i + off] : '\0';
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            const std::size_t end = src.find('\n', i);
            const std::size_t stop = end == std::string::npos ? n : end;
            harvestAnnotations(src.substr(i, stop - i), line, scan);
            i = stop;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            std::size_t j = i + 2;
            int commentLine = line;
            std::string text;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n') {
                    harvestAnnotations(text, commentLine, scan);
                    text.clear();
                    ++line;
                    commentLine = line;
                } else {
                    text.push_back(src[j]);
                }
                ++j;
            }
            harvestAnnotations(text, commentLine, scan);
            i = j + 2 < n ? j + 2 : n;
            continue;
        }
        if (c == '"' || c == '\'') {
            // Raw strings: R"delim( ... )delim"
            if (c == '"' && i > 0 && src[i - 1] == 'R' &&
                !scan.toks.empty() && scan.toks.back().text == "R") {
                const std::size_t open = src.find('(', i);
                std::string delim =
                    src.substr(i + 1, open - (i + 1));
                const std::string closer = ")" + delim + "\"";
                std::size_t end = src.find(closer, open);
                if (end == std::string::npos)
                    end = n;
                else
                    end += closer.size();
                line += static_cast<int>(
                    std::count(src.begin() + static_cast<long>(i),
                               src.begin() + static_cast<long>(end),
                               '\n'));
                scan.toks.back() = {"\"\"", line, 's'};
                i = end;
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\')
                    ++j;
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            scan.toks.push_back({std::string(1, c) + "...", line, 's'});
            i = j + 1;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '_')) {
                ++j;
            }
            scan.toks.push_back({src.substr(i, j - i), line, 'i'});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) ||
                    src[j] == '.' || src[j] == '\'')) {
                ++j;
            }
            scan.toks.push_back({src.substr(i, j - i), line, 'n'});
            i = j;
            continue;
        }
        // Multi-char punctuation the rules care about.
        static const char *kDigraphs[] = {"::", "->", "[[", "]]"};
        bool matched = false;
        for (const char *d : kDigraphs) {
            if (c == d[0] && peek(1) == d[1]) {
                scan.toks.push_back({d, line, 'p'});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        scan.toks.push_back({std::string(1, c), line, 'p'});
        ++i;
    }
    return scan;
}

// ---------------------------------------------------------------------
// Annotation resolution
// ---------------------------------------------------------------------

/**
 * Maps each code line to the annotations covering it. An annotation
 * covers the line it is written on; when that line carries no code,
 * it covers the next line that does (so a multi-line explanatory
 * comment above the offending statement works naturally).
 */
class AllowMap
{
  public:
    AllowMap(const Scan &scan)
    {
        std::set<int> codeLines;
        for (const Tok &tok : scan.toks)
            codeLines.insert(tok.line);
        for (const auto &[line, notes] : scan.notes) {
            int covered = line;
            if (!codeLines.count(line)) {
                auto next = codeLines.upper_bound(line);
                if (next == codeLines.end())
                    continue;
                covered = *next;
            }
            for (const Annotation &note : notes)
                byLine_[covered].push_back(note);
        }
    }

    /** Returns the annotation for (line, rule), or nullptr. */
    const Annotation *
    lookup(int line, Rule rule) const
    {
        auto it = byLine_.find(line);
        if (it == byLine_.end())
            return nullptr;
        for (const Annotation &note : it->second) {
            if (note.rule == rule)
                return &note;
        }
        return nullptr;
    }

  private:
    std::map<int, std::vector<Annotation>> byLine_;
};

// ---------------------------------------------------------------------
// Rule machinery
// ---------------------------------------------------------------------

struct Linter
{
    const std::string &path;
    const std::vector<Tok> &toks;
    const AllowMap &allow;
    std::vector<Finding> &out;

    void
    flag(Rule rule, int line, std::string message)
    {
        Finding finding;
        finding.rule = rule;
        finding.file = path;
        finding.line = line;
        finding.message = std::move(message);
        if (const Annotation *note = allow.lookup(line, rule)) {
            finding.allowed = true;
            finding.reason = note->reason;
        }
        out.push_back(std::move(finding));
    }

    const Tok *
    at(std::size_t i) const
    {
        return i < toks.size() ? &toks[i] : nullptr;
    }

    bool
    nextIs(std::size_t i, const char *text) const
    {
        const Tok *tok = at(i + 1);
        return tok && tok->text == text;
    }

    bool
    prevIs(std::size_t i, const char *text) const
    {
        return i > 0 && toks[i - 1].text == text;
    }
};

bool
pathStartsWith(const std::string &path,
               std::initializer_list<const char *> prefixes)
{
    for (const char *prefix : prefixes) {
        if (path.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

// --- R1: checked-store discipline ------------------------------------

/**
 * Files allowed to touch memory images directly: the checked store
 * path itself and the support library's bounds-checked accessors.
 * Everything else — including the fault injectors, which scribble on
 * purpose — must carry a riolint:allow(R1) annotation.
 */
constexpr std::initializer_list<const char *> kR1Whitelist = {
    "src/sim/membus", "src/sim/physmem", "src/sim/disk",
    "src/core/warmreboot", "src/support/",
};

void
runR1(Linter &lint)
{
    if (pathStartsWith(lint.path, kR1Whitelist))
        return;
    static const std::set<std::string> kRawCopies = {
        "memcpy", "memmove", "memset", "bcopy", "bzero_raw",
    };
    const auto &toks = lint.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.kind != 'i')
            continue;
        if (kRawCopies.count(tok.text) && lint.nextIs(i, "(")) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      tok.text +
                          " bypasses the checked store path; use "
                          "MemBus or support/bytes.hh accessors");
        } else if (tok.text == "raw" && lint.nextIs(i, "(") &&
                   (lint.prevIs(i, ".") || lint.prevIs(i, "->"))) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "PhysMem::raw() exposes an unchecked pointer "
                      "into the memory image");
        } else if (tok.text == "store_") {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "direct access to Disk::store_ bypasses the "
                      "simulated I/O path");
        } else if (tok.text == "hostSector" && lint.nextIs(i, "(") &&
                   (lint.prevIs(i, ".") || lint.prevIs(i, "->"))) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "Disk::hostSector() exposes a writable window "
                      "past the simulated I/O path; fault injectors "
                      "must annotate the scribble");
        }
    }
}

// --- R2: determinism -------------------------------------------------

constexpr std::initializer_list<const char *> kR2Whitelist = {
    "src/support/rng", "src/sim/clock",
};

void
runR2(Linter &lint)
{
    if (pathStartsWith(lint.path, kR2Whitelist))
        return;
    static const std::set<std::string> kEntropy = {
        "rand",          "srand",     "drand48",
        "random_device", "mt19937",   "mt19937_64",
        "default_random_engine",
    };
    static const std::set<std::string> kWallClock = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime",
    };
    const auto &toks = lint.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.kind != 'i')
            continue;
        if (kEntropy.count(tok.text)) {
            lint.flag(Rule::R2Determinism, tok.line,
                      tok.text +
                          " breaks seed-reproducibility; use "
                          "support::Rng");
        } else if (kWallClock.count(tok.text)) {
            lint.flag(Rule::R2Determinism, tok.line,
                      tok.text +
                          " reads the host clock; use sim::Clock "
                          "for anything that affects results");
        } else if (tok.text == "time" && lint.nextIs(i, "(") &&
                   !lint.prevIs(i, ".") && !lint.prevIs(i, "->")) {
            lint.flag(Rule::R2Determinism, tok.line,
                      "time() reads the host clock; use sim::Clock");
        }
    }
}

// --- R3: lock order --------------------------------------------------

/** Canonical acquisition order for the named kernel locks. */
const std::map<std::string, int> kLockRank = {
    {"fsLock_", 0},
    {"bufLock_", 1},
    {"ubcLock_", 2},
};

void
runR3(Linter &lint)
{
    struct Held
    {
        int depth;
        int rank;
        std::string name;
    };
    std::vector<Held> held;
    int depth = 0;
    const auto &toks = lint.toks;

    auto acquire = [&](const std::string &name, int line) {
        const int rank = kLockRank.at(name);
        for (const Held &h : held) {
            if (h.rank >= rank) {
                lint.flag(Rule::R3LockOrder, line,
                          "acquires " + name + " while holding " +
                              h.name +
                              " (canonical order: fsLock_ < "
                              "bufLock_ < ubcLock_)");
                break;
            }
        }
        held.push_back({depth, rank, name});
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.text == "{") {
            ++depth;
            continue;
        }
        if (tok.text == "}") {
            --depth;
            while (!held.empty() && held.back().depth > depth)
                held.pop_back();
            continue;
        }
        if (tok.kind != 'i')
            continue;
        // LockTable::Guard name(locks, <lock>);
        if (tok.text == "Guard") {
            std::size_t j = i + 1;
            if (lint.at(j) && toks[j].kind == 'i')
                ++j; // Skip the guard variable name.
            if (lint.at(j) && toks[j].text == "(" && lint.at(j + 2) &&
                toks[j + 2].text == "," && lint.at(j + 3) &&
                kLockRank.count(toks[j + 3].text)) {
                acquire(toks[j + 3].text, toks[j + 3].line);
            }
            continue;
        }
        // locks_.acquire(<lock>) / .release(<lock>)
        if (tok.text == "acquire" && lint.nextIs(i, "(") &&
            lint.at(i + 2) && kLockRank.count(toks[i + 2].text)) {
            acquire(toks[i + 2].text, toks[i + 2].line);
        } else if (tok.text == "release" && lint.nextIs(i, "(") &&
                   lint.at(i + 2) &&
                   kLockRank.count(toks[i + 2].text)) {
            const std::string &name = toks[i + 2].text;
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
                if (it->name == name) {
                    held.erase(std::next(it).base());
                    break;
                }
            }
        }
    }
}

// --- R4: error flow --------------------------------------------------

bool
isStatusType(const std::vector<Tok> &toks, std::size_t i)
{
    return toks[i].text == "OsStatus" || toks[i].text == "Result";
}

/** Index just past a `Result<...>` spelling starting at @p i. */
std::size_t
skipStatusType(const std::vector<Tok> &toks, std::size_t i)
{
    std::size_t j = i + 1;
    if (toks[i].text == "Result" && j < toks.size() &&
        toks[j].text == "<") {
        int angle = 1;
        ++j;
        while (j < toks.size() && angle > 0) {
            if (toks[j].text == "<")
                ++angle;
            else if (toks[j].text == ">")
                --angle;
            ++j;
        }
    }
    return j;
}

void
runR4(Linter &lint)
{
    const auto &toks = lint.toks;
    std::set<std::string> statusFns;
    std::set<std::size_t> declNameIdx;

    // Pass 1: declarations. `OsStatus name(` must be [[nodiscard]];
    // Result is [[nodiscard]] class-level, so its functions only
    // feed the local call-site set.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != 'i' || !isStatusType(toks, i))
            continue;
        std::size_t j = skipStatusType(toks, i);
        // Optional qualification: Class::name
        std::size_t nameIdx = j;
        while (nameIdx + 1 < toks.size() &&
               toks[nameIdx].kind == 'i' &&
               toks[nameIdx + 1].text == "::") {
            nameIdx += 2;
        }
        if (nameIdx >= toks.size() || toks[nameIdx].kind != 'i' ||
            !(nameIdx + 1 < toks.size() &&
              toks[nameIdx + 1].text == "(")) {
            continue;
        }
        declNameIdx.insert(nameIdx);
        statusFns.insert(toks[nameIdx].text);
        if (toks[i].text == "OsStatus") {
            bool nodiscard = false;
            const std::size_t back = i > 6 ? i - 6 : 0;
            for (std::size_t k = back; k < i; ++k) {
                if (toks[k].text == "nodiscard")
                    nodiscard = true;
            }
            if (!nodiscard) {
                lint.flag(Rule::R4ErrorFlow, toks[nameIdx].line,
                          toks[nameIdx].text +
                              " returns OsStatus but is not "
                              "[[nodiscard]]");
            }
        }
    }

    // Pass 2: statement-position calls to local status functions
    // whose result is dropped.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != 'i' || !statusFns.count(toks[i].text) ||
            !lint.nextIs(i, "(") || declNameIdx.count(i)) {
            continue;
        }
        if (i == 0)
            continue;
        const Tok &prev = toks[i - 1];
        bool dropped = false;
        if (prev.text == ";" || prev.text == "{" || prev.text == "}") {
            dropped = true;
        } else if (prev.text == ")") {
            // Either a cast — (void)call() — or a control clause:
            // if (x) call();. Walk back to the matching '('.
            int parens = 1;
            std::size_t k = i - 1;
            while (k > 0 && parens > 0) {
                --k;
                if (toks[k].text == ")")
                    ++parens;
                else if (toks[k].text == "(")
                    --parens;
            }
            if (k > 0) {
                const std::string &opener = toks[k - 1].text;
                dropped = opener == "if" || opener == "while" ||
                          opener == "for" || opener == "switch";
            }
        }
        if (dropped) {
            lint.flag(Rule::R4ErrorFlow, toks[i].line,
                      "result of " + toks[i].text +
                          "() is dropped; check it or cast to void");
        }
    }
}

// --- R5: registry mutation -------------------------------------------

/** The shadow-page protocol entry points in core/rio.cc — the only
 * code allowed to mutate registry entries. */
const std::set<std::string> kRegistryWriters = {
    "install",   "setDirty",   "invalidate", "setDiskBlock",
    "beginWrite", "endWrite",  "activate",
};

void
runR5(Linter &lint)
{
    static const std::string kRio = "core/rio.cc";
    const bool inRio =
        lint.path.size() >= kRio.size() &&
        lint.path.compare(lint.path.size() - kRio.size(),
                          kRio.size(), kRio) == 0;
    const auto &toks = lint.toks;

    // Track the enclosing function: at namespace depth, remember the
    // last `name(` before the body's '{' (the repo defines functions
    // at namespace scope; constructor initializer lists are frozen
    // out by the ':' state).
    int depth = 0;
    std::string pending;
    std::string current;
    int currentDepth = -1;
    bool frozen = false;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.text == "{") {
            ++depth;
            if (!pending.empty() && currentDepth < 0) {
                current = pending;
                currentDepth = depth;
                pending.clear();
            }
            frozen = false;
            continue;
        }
        if (tok.text == "}") {
            --depth;
            if (currentDepth > 0 && depth < currentDepth) {
                current.clear();
                currentDepth = -1;
            }
            continue;
        }
        if (tok.text == ";") {
            pending.clear();
            frozen = false;
            continue;
        }
        if (tok.text == ":" && !pending.empty()) {
            frozen = true; // Constructor initializer list.
            continue;
        }
        if (tok.kind != 'i')
            continue;

        const bool isCall = lint.nextIs(i, "(");
        if (isCall && currentDepth < 0 && !frozen)
            pending = tok.text;

        if (isCall && (tok.text == "writeEntryField32" ||
                       tok.text == "writeEntryField64")) {
            // A declaration (`void writeEntryField32(`) or the
            // definition itself (`RioSystem::writeEntryField32(`)
            // is not a mutation site.
            if (i > 0 && (toks[i - 1].kind == 'i' ||
                          toks[i - 1].text == "::")) {
                continue;
            }
            const bool legal =
                inRio && kRegistryWriters.count(current) > 0;
            if (!legal) {
                lint.flag(Rule::R5RegistryMutation, tok.line,
                          tok.text +
                              " mutates a registry entry outside "
                              "the shadow-page protocol entry "
                              "points in core/rio.cc");
            }
        }
    }
}

// --- R6: shadow-page protocol typestate ------------------------------

/**
 * The shadow-page protocol is a typestate: open the registry page,
 * write entry fields, close it, and commit with the state flip as
 * the last store of its own window. Counting openPage/closePage per
 * function catches the orderings the warm reboot cannot repair:
 *
 *  - a writeEntryField* with no window open — the store would trap
 *    against a protected page, or worse, silently succeed on an
 *    unprotected build and leave no crash-consistent source;
 *  - a flip to kStateActive while more than one window is open —
 *    the data page has not been closed, so a crash after the flip
 *    publishes an entry whose contents are still being written;
 *  - a closePage with no window open, and a window still open when
 *    the function returns.
 *
 * The one sanctioned cross-function handoff is beginWrite/endWrite:
 * beginWrite returns with the written page's window open (exactly
 * one), and endWrite starts by closing it. The rule encodes that
 * pair: endWrite begins with one inherited window, beginWrite may
 * end with one.
 */
void
runR6(Linter &lint)
{
    const auto &toks = lint.toks;

    int depth = 0;
    std::string pending;
    std::string current;
    int currentDepth = -1;
    bool frozen = false;
    int open = 0; ///< Protocol windows open in this function.
    int lastOpenLine = 0;
    bool sawStep = false; ///< Any protocol call in this function.

    auto leaveFunction = [&]() {
        const bool handoff = current == "beginWrite" && open == 1;
        // sawStep keeps interface stubs (a no-op endWrite override)
        // from tripping over the inherited-window convention.
        if (open > 0 && sawStep && !handoff) {
            lint.flag(Rule::R6ShadowProtocol, lastOpenLine,
                      "openPage window still open at function end; "
                      "every open needs a matching closePage");
        }
        open = 0;
        sawStep = false;
        current.clear();
        currentDepth = -1;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.text == "{") {
            ++depth;
            if (!pending.empty() && currentDepth < 0) {
                current = pending;
                currentDepth = depth;
                // endWrite inherits the data-page window beginWrite
                // left open.
                open = current == "endWrite" ? 1 : 0;
                sawStep = false;
                pending.clear();
            }
            frozen = false;
            continue;
        }
        if (tok.text == "}") {
            --depth;
            if (currentDepth > 0 && depth < currentDepth)
                leaveFunction();
            continue;
        }
        if (tok.text == ";") {
            pending.clear();
            frozen = false;
            continue;
        }
        if (tok.text == ":" && !pending.empty()) {
            frozen = true; // Constructor initializer list.
            continue;
        }
        if (tok.kind != 'i')
            continue;

        const bool isCall = lint.nextIs(i, "(");
        if (isCall && currentDepth < 0 && !frozen)
            pending = tok.text;
        if (!isCall)
            continue;
        // A declaration (`void openPage(`) or the definition itself
        // (`RioSystem::openPage(`) is not a protocol step.
        if (i > 0 &&
            (toks[i - 1].kind == 'i' || toks[i - 1].text == "::")) {
            continue;
        }

        if (tok.text == "openPage") {
            ++open;
            sawStep = true;
            lastOpenLine = tok.line;
        } else if (tok.text == "closePage") {
            sawStep = true;
            if (open == 0) {
                lint.flag(Rule::R6ShadowProtocol, tok.line,
                          "closePage without a matching openPage");
            } else {
                --open;
            }
        } else if (tok.text == "writeEntryField32" ||
                   tok.text == "writeEntryField64") {
            sawStep = true;
            if (open == 0) {
                lint.flag(Rule::R6ShadowProtocol, tok.line,
                          tok.text +
                              " outside an openPage/closePage "
                              "window; open the registry page first");
                continue;
            }
            if (tok.text != "writeEntryField32")
                continue;
            // The commit flip: writeEntryField32(.., kOffState,
            // kStateActive). Scan the argument list for both idents.
            bool offState = false;
            bool stateActive = false;
            int parens = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (toks[j].text == "(") {
                    ++parens;
                } else if (toks[j].text == ")") {
                    if (--parens == 0)
                        break;
                } else if (toks[j].text == "kOffState") {
                    offState = true;
                } else if (toks[j].text == "kStateActive") {
                    stateActive = true;
                }
            }
            if (offState && stateActive && open != 1) {
                lint.flag(Rule::R6ShadowProtocol, tok.line,
                          "state flip to Active while another page "
                          "window is still open; close the data page "
                          "before committing");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

struct Tally
{
    int violations = 0;
    int allowed = 0;
};

} // namespace

const char *
ruleId(Rule rule)
{
    switch (rule) {
      case Rule::R1CheckedStore: return "R1";
      case Rule::R2Determinism: return "R2";
      case Rule::R3LockOrder: return "R3";
      case Rule::R4ErrorFlow: return "R4";
      case Rule::R5RegistryMutation: return "R5";
      case Rule::R6ShadowProtocol: return "R6";
    }
    return "?";
}

const char *
ruleTitle(Rule rule)
{
    switch (rule) {
      case Rule::R1CheckedStore:
        return "checked-store discipline";
      case Rule::R2Determinism:
        return "determinism";
      case Rule::R3LockOrder:
        return "lock acquisition order";
      case Rule::R4ErrorFlow:
        return "error flow";
      case Rule::R5RegistryMutation:
        return "registry mutation protocol";
      case Rule::R6ShadowProtocol:
        return "shadow-page protocol typestate";
    }
    return "?";
}

int
Report::violations() const
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding &f) { return !f.allowed; }));
}

int
Report::allowed() const
{
    return static_cast<int>(findings.size()) - violations();
}

std::string
Report::text() const
{
    std::ostringstream out;
    for (const Finding &f : findings) {
        out << f.file << ":" << f.line << ": [" << ruleId(f.rule)
            << "] " << f.message;
        if (f.allowed) {
            out << " (allowed";
            if (!f.reason.empty())
                out << ": " << f.reason;
            out << ")";
        }
        out << "\n";
    }
    out << "riolint: " << violations() << " violation(s), "
        << allowed() << " allowed\n";
    return out.str();
}

std::string
Report::json() const
{
    std::map<std::string, Tally> byRule;
    std::map<std::string, Tally> byDir;
    for (const Finding &f : findings) {
        Tally &rule = byRule[ruleId(f.rule)];
        Tally &dir = byDir[dirOf(f.file)];
        if (f.allowed) {
            ++rule.allowed;
            ++dir.allowed;
        } else {
            ++rule.violations;
            ++dir.violations;
        }
    }

    std::ostringstream out;
    out << "{\n";
    out << "  \"violations\": " << violations() << ",\n";
    out << "  \"allowed\": " << allowed() << ",\n";

    auto emitTallies = [&](const char *key,
                           const std::map<std::string, Tally> &map) {
        out << "  \"" << key << "\": {";
        bool first = true;
        for (const auto &[name, tally] : map) {
            out << (first ? "\n" : ",\n");
            out << "    \"" << jsonEscape(name)
                << "\": {\"violations\": " << tally.violations
                << ", \"allowed\": " << tally.allowed << "}";
            first = false;
        }
        out << (first ? "},\n" : "\n  },\n");
    };
    emitTallies("rules", byRule);
    emitTallies("directories", byDir);

    out << "  \"findings\": [";
    bool first = true;
    for (const Finding &f : findings) {
        out << (first ? "\n" : ",\n");
        out << "    {\"rule\": \"" << ruleId(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"allowed\": "
            << (f.allowed ? "true" : "false") << ", \"message\": \""
            << jsonEscape(f.message) << "\"";
        if (f.allowed)
            out << ", \"reason\": \"" << jsonEscape(f.reason) << "\"";
        out << "}";
        first = false;
    }
    out << (first ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    const Scan scan = tokenize(content);
    const AllowMap allow(scan);
    std::vector<Finding> findings;
    Linter lint{path, scan.toks, allow, findings};
    runR1(lint);
    runR2(lint);
    runR3(lint);
    runR4(lint);
    runR5(lint);
    runR6(lint);
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line) <
                         std::tie(b.file, b.line);
              });
    return findings;
}

Report
lintFiles(const std::vector<std::string> &paths,
          const std::string &root)
{
    Report report;
    for (const std::string &path : paths) {
        const std::filesystem::path full =
            std::filesystem::path(root) / path;
        std::ifstream in(full, std::ios::binary);
        if (!in) {
            Finding finding;
            finding.rule = Rule::R4ErrorFlow;
            finding.file = path;
            finding.message = "riolint: cannot open file";
            report.findings.push_back(std::move(finding));
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        auto found = lintSource(path, buf.str());
        report.findings.insert(report.findings.end(), found.begin(),
                               found.end());
    }
    return report;
}

Report
lintTree(const std::string &root)
{
    std::vector<std::string> paths;
    const std::filesystem::path base =
        std::filesystem::path(root) / "src";
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cc" && ext != ".hh")
            continue;
        paths.push_back(
            std::filesystem::relative(entry.path(), root)
                .generic_string());
    }
    std::sort(paths.begin(), paths.end());
    return lintFiles(paths, root);
}

} // namespace riolint
