#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.hh"
#include "lockgraph.hh"

namespace riolint
{

namespace
{

// ---------------------------------------------------------------------
// Per-file rule machinery
// ---------------------------------------------------------------------

struct Linter
{
    const std::string &path;
    const std::vector<Tok> &toks;
    const AllowMap &allow;
    std::vector<Finding> &out;

    void
    flag(Rule rule, int line, std::string message)
    {
        Finding finding;
        finding.rule = rule;
        finding.file = path;
        finding.line = line;
        finding.message = std::move(message);
        if (const Annotation *note = allow.lookup(line, rule)) {
            finding.allowed = true;
            finding.reason = note->reason;
        }
        out.push_back(std::move(finding));
    }

    const Tok *
    at(std::size_t i) const
    {
        return i < toks.size() ? &toks[i] : nullptr;
    }

    bool
    nextIs(std::size_t i, const char *text) const
    {
        const Tok *tok = at(i + 1);
        return tok && tok->text == text;
    }

    bool
    prevIs(std::size_t i, const char *text) const
    {
        return i > 0 && toks[i - 1].text == text;
    }
};

bool
pathStartsWith(const std::string &path,
               std::initializer_list<const char *> prefixes)
{
    for (const char *prefix : prefixes) {
        if (path.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

// --- R1: checked-store discipline ------------------------------------

/**
 * Files allowed to touch memory images directly: the checked store
 * path itself and the support library's bounds-checked accessors.
 * Everything else — including the fault injectors, which scribble on
 * purpose — must carry a riolint:allow(R1) annotation.
 */
constexpr std::initializer_list<const char *> kR1Whitelist = {
    "src/sim/membus", "src/sim/physmem", "src/sim/disk",
    "src/sim/nvregion",
    "src/core/warmreboot", "src/support/",
};

void
runR1(Linter &lint)
{
    if (pathStartsWith(lint.path, kR1Whitelist))
        return;
    static const std::set<std::string> kRawCopies = {
        "memcpy", "memmove", "memset", "bcopy", "bzero_raw",
    };
    const auto &toks = lint.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.kind != 'i')
            continue;
        if (kRawCopies.count(tok.text) && lint.nextIs(i, "(")) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      tok.text +
                          " bypasses the checked store path; use "
                          "MemBus or support/bytes.hh accessors");
        } else if (tok.text == "raw" && lint.nextIs(i, "(") &&
                   (lint.prevIs(i, ".") || lint.prevIs(i, "->"))) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "PhysMem::raw() exposes an unchecked pointer "
                      "into the memory image");
        } else if (tok.text == "store_") {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "direct access to Disk::store_ bypasses the "
                      "simulated I/O path");
        } else if (tok.text == "hostSector" && lint.nextIs(i, "(") &&
                   (lint.prevIs(i, ".") || lint.prevIs(i, "->"))) {
            lint.flag(Rule::R1CheckedStore, tok.line,
                      "Disk::hostSector() exposes a writable window "
                      "past the simulated I/O path; fault injectors "
                      "must annotate the scribble");
        }
    }
}

// --- R2: determinism -------------------------------------------------

constexpr std::initializer_list<const char *> kR2Whitelist = {
    "src/support/rng", "src/sim/clock",
};

void
runR2(Linter &lint)
{
    if (pathStartsWith(lint.path, kR2Whitelist))
        return;
    static const std::set<std::string> kEntropy = {
        "rand",          "srand",     "drand48",
        "random_device", "mt19937",   "mt19937_64",
        "default_random_engine",
    };
    static const std::set<std::string> kWallClock = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime",
    };
    const auto &toks = lint.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.kind != 'i')
            continue;
        if (kEntropy.count(tok.text)) {
            lint.flag(Rule::R2Determinism, tok.line,
                      tok.text +
                          " breaks seed-reproducibility; use "
                          "support::Rng");
        } else if (kWallClock.count(tok.text)) {
            lint.flag(Rule::R2Determinism, tok.line,
                      tok.text +
                          " reads the host clock; use sim::Clock "
                          "for anything that affects results");
        } else if (tok.text == "time" && lint.nextIs(i, "(") &&
                   !lint.prevIs(i, ".") && !lint.prevIs(i, "->")) {
            lint.flag(Rule::R2Determinism, tok.line,
                      "time() reads the host clock; use sim::Clock");
        }
    }
}

// --- R4: error flow --------------------------------------------------

bool
isStatusType(const std::vector<Tok> &toks, std::size_t i)
{
    return toks[i].text == "OsStatus" || toks[i].text == "Result";
}

/** Index just past a `Result<...>` spelling starting at @p i. */
std::size_t
skipStatusType(const std::vector<Tok> &toks, std::size_t i)
{
    std::size_t j = i + 1;
    if (toks[i].text == "Result" && j < toks.size() &&
        toks[j].text == "<") {
        int angle = 1;
        ++j;
        while (j < toks.size() && angle > 0) {
            if (toks[j].text == "<")
                ++angle;
            else if (toks[j].text == ">")
                --angle;
            ++j;
        }
    }
    return j;
}

/**
 * First token of the postfix chain ending in the call at @p i: walks
 * back over `.`/`->`/`::` links, where each earlier element is an
 * identifier (including `this`) or a balanced `name(...)`/`name[...]`
 * group. `fs.cache().flushQuietly(...)` starts at `fs`.
 */
std::size_t
chainStart(const std::vector<Tok> &toks, std::size_t i)
{
    std::size_t s = i;
    while (s >= 2) {
        const std::string &link = toks[s - 1].text;
        if (link != "." && link != "->" && link != "::")
            break;
        std::size_t e = s - 2;
        if (toks[e].text == ")" || toks[e].text == "]") {
            const std::string closer = toks[e].text;
            const std::string opener = closer == ")" ? "(" : "[";
            int bal = 1;
            std::size_t k = e;
            while (k > 0 && bal > 0) {
                --k;
                if (toks[k].text == closer)
                    ++bal;
                else if (toks[k].text == opener)
                    --bal;
            }
            if (bal != 0)
                break;
            if (k > 0 && toks[k - 1].kind == 'i')
                s = k - 1;
            else
                s = k;
        } else if (toks[e].kind == 'i') {
            s = e;
        } else {
            break;
        }
    }
    return s;
}

/** Is the comma right before token @p commaIdx a statement-level
 * comma operator (vs an argument separator)? Scan left: a `;`/`{`/`}`
 * at depth 0 before any unmatched opening paren means statement
 * level. */
bool
statementComma(const std::vector<Tok> &toks, std::size_t commaIdx)
{
    int bal = 0;
    std::size_t k = commaIdx;
    while (k > 0) {
        --k;
        const std::string &t = toks[k].text;
        if (t == ")" || t == "]") {
            ++bal;
        } else if (t == "(" || t == "[") {
            if (bal == 0)
                return false;
            --bal;
        } else if (bal == 0 &&
                   (t == ";" || t == "{" || t == "}")) {
            return true;
        }
    }
    return true;
}

void
runR4(Linter &lint)
{
    const auto &toks = lint.toks;
    std::set<std::string> statusFns;
    std::set<std::size_t> declNameIdx;

    // Pass 1: declarations. `OsStatus name(` must be [[nodiscard]];
    // Result is [[nodiscard]] class-level, so its functions only
    // feed the local call-site set.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != 'i' || !isStatusType(toks, i))
            continue;
        std::size_t j = skipStatusType(toks, i);
        // Optional qualification: Class::name
        std::size_t nameIdx = j;
        while (nameIdx + 1 < toks.size() &&
               toks[nameIdx].kind == 'i' &&
               toks[nameIdx + 1].text == "::") {
            nameIdx += 2;
        }
        if (nameIdx >= toks.size() || toks[nameIdx].kind != 'i' ||
            !(nameIdx + 1 < toks.size() &&
              toks[nameIdx + 1].text == "(")) {
            continue;
        }
        declNameIdx.insert(nameIdx);
        statusFns.insert(toks[nameIdx].text);
        if (toks[i].text == "OsStatus") {
            bool nodiscard = false;
            const std::size_t back = i > 6 ? i - 6 : 0;
            for (std::size_t k = back; k < i; ++k) {
                if (toks[k].text == "nodiscard")
                    nodiscard = true;
            }
            if (!nodiscard) {
                lint.flag(Rule::R4ErrorFlow, toks[nameIdx].line,
                          toks[nameIdx].text +
                              " returns OsStatus but is not "
                              "[[nodiscard]]");
            }
        }
    }

    // Pass 2: statement-position calls to local status functions
    // whose result is dropped. The statement position is judged at
    // the *start of the postfix chain*, so `this->f()`, the final
    // call of `a.b().f()`, and both sides of a statement-level comma
    // are all caught; a call whose result feeds a further `.`/`->`
    // member access is consumed and skipped.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != 'i' || !statusFns.count(toks[i].text) ||
            !lint.nextIs(i, "(") || declNameIdx.count(i)) {
            continue;
        }
        if (i == 0)
            continue;
        const std::size_t close = matchForward(toks, i + 1);
        if (close + 1 < toks.size() &&
            (toks[close + 1].text == "." ||
             toks[close + 1].text == "->")) {
            continue; // Mid-chain: the result is the receiver.
        }
        const std::size_t s = chainStart(toks, i);
        if (s == 0)
            continue;
        const Tok &prev = toks[s - 1];
        bool dropped = false;
        if (prev.text == ";" || prev.text == "{" ||
            prev.text == "}" || prev.text == "else" ||
            prev.text == "do") {
            dropped = true;
        } else if (prev.text == ",") {
            dropped = statementComma(toks, s - 1);
        } else if (prev.text == ")") {
            // Either a cast — (void)call() — or a control clause:
            // if (x) call();. Walk back to the matching '('.
            int parens = 1;
            std::size_t k = s - 1;
            while (k > 0 && parens > 0) {
                --k;
                if (toks[k].text == ")")
                    ++parens;
                else if (toks[k].text == "(")
                    --parens;
            }
            if (k > 0) {
                const std::string &opener = toks[k - 1].text;
                dropped = opener == "if" || opener == "while" ||
                          opener == "for" || opener == "switch";
            }
        }
        if (dropped) {
            lint.flag(Rule::R4ErrorFlow, toks[i].line,
                      "result of " + toks[i].text +
                          "() is dropped; check it or cast to void");
        }
    }
}

// --- R5: registry mutation -------------------------------------------

/** The shadow-page protocol entry points in core/rio.cc — the only
 * code allowed to mutate registry entries. */
const std::set<std::string> kRegistryWriters = {
    "install",   "setDirty",   "invalidate", "setDiskBlock",
    "beginWrite", "endWrite",  "activate",
};

void
runR5(Linter &lint)
{
    static const std::string kRio = "core/rio.cc";
    const bool inRio =
        lint.path.size() >= kRio.size() &&
        lint.path.compare(lint.path.size() - kRio.size(),
                          kRio.size(), kRio) == 0;
    const auto &toks = lint.toks;

    // Track the enclosing function: at namespace depth, remember the
    // last `name(` before the body's '{' (the repo defines functions
    // at namespace scope; constructor initializer lists are frozen
    // out by the ':' state).
    int depth = 0;
    std::string pending;
    std::string current;
    int currentDepth = -1;
    bool frozen = false;

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Tok &tok = toks[i];
        if (tok.text == "{") {
            ++depth;
            if (!pending.empty() && currentDepth < 0) {
                current = pending;
                currentDepth = depth;
                pending.clear();
            }
            frozen = false;
            continue;
        }
        if (tok.text == "}") {
            --depth;
            if (currentDepth > 0 && depth < currentDepth) {
                current.clear();
                currentDepth = -1;
            }
            continue;
        }
        if (tok.text == ";") {
            pending.clear();
            frozen = false;
            continue;
        }
        if (tok.text == ":" && !pending.empty()) {
            frozen = true; // Constructor initializer list.
            continue;
        }
        if (tok.kind != 'i')
            continue;

        const bool isCall = lint.nextIs(i, "(");
        if (isCall && currentDepth < 0 && !frozen)
            pending = tok.text;

        if (isCall && (tok.text == "writeEntryField32" ||
                       tok.text == "writeEntryField64")) {
            // A declaration (`void writeEntryField32(`) or the
            // definition itself (`RioSystem::writeEntryField32(`)
            // is not a mutation site.
            if (i > 0 && (toks[i - 1].kind == 'i' ||
                          toks[i - 1].text == "::")) {
                continue;
            }
            const bool legal =
                inRio && kRegistryWriters.count(current) > 0;
            if (!legal) {
                lint.flag(Rule::R5RegistryMutation, tok.line,
                          tok.text +
                              " mutates a registry entry outside "
                              "the shadow-page protocol entry "
                              "points in core/rio.cc");
            }
        }
    }
}

// --- R6: shadow-page protocol typestate (interprocedural) ------------

/**
 * The shadow-page protocol is a typestate: open the registry page,
 * write entry fields, close it, and commit with the state flip as
 * the last store of its own window. Window counts are per-function
 * but *propagate through the call graph*: each function gets a net
 * window delta (opens minus closes, plus its callees' deltas), and
 * the number of windows inherited at entry is the maximum open count
 * observed at any call site that reaches it. That makes the
 * sanctioned beginWrite -> endWrite handoff fall out of the callers
 * that pair them — including RAII ctor/dtor pairs like
 * BufferCache::WriteWindow — instead of being special-cased by name.
 *
 * Flagged orderings are the ones the warm reboot cannot repair:
 *
 *  - a writeEntryField* with no window open — the store would trap
 *    against a protected page, or worse, silently succeed on an
 *    unprotected build and leave no crash-consistent source;
 *  - a flip to kStateActive while more than one window is open —
 *    the data page has not been closed, so a crash after the flip
 *    publishes an entry whose contents are still being written;
 *  - a closePage (direct or through a callee) with no window open;
 *  - more windows open at the end of a *root* function (one no
 *    scanned call site reaches) than it inherited. Non-roots charge
 *    their surplus to their callers; an RAII ctor whose matching
 *    dtor closes the same net count is exempt.
 */
class ProtocolAnalysis
{
  public:
    explicit ProtocolAnalysis(const CallGraph &graph)
        : graph_(graph)
    {
    }

    void
    run(std::vector<RawFinding> &out)
    {
        extractEvents();
        computeDeltas();
        pairRaii();
        propagateEntries();
        check(out);
    }

  private:
    struct ProtoEvent
    {
        enum Kind
        {
            Open,
            Close,
            Write,
            Flip,
            Call,
        };
        Kind kind = Open;
        std::string name; ///< Token text for diagnostics.
        std::size_t callIdx = 0;
        int line = 0;
    };

    const CallGraph &graph_;
    std::vector<std::vector<ProtoEvent>> events_;
    std::vector<int> delta_;
    std::vector<int> entry_;
    std::vector<char> raiiExempt_;

    static constexpr int kClamp = 8;

    void
    extractEvents()
    {
        const auto &fns = graph_.functions();
        events_.assign(fns.size(), {});
        for (std::size_t fi = 0; fi < fns.size(); ++fi) {
            const Function &fn = fns[fi];
            const auto &toks =
                graph_.file(fn.fileIndex).scan.toks;

            std::map<std::size_t, std::size_t> callAt;
            for (std::size_t c = 0; c < fn.calls.size(); ++c)
                callAt[fn.calls[c].tokIndex] = c;

            for (std::size_t k = fn.bodyBegin;
                 k <= fn.bodyEnd && k < toks.size(); ++k) {
                const Tok &t = toks[k];
                if (t.kind != 'i')
                    continue;
                const bool isCall =
                    k + 1 < toks.size() && toks[k + 1].text == "(";
                // A declaration (`void openPage(`) or a qualified
                // non-member spelling is not a protocol step.
                const bool declLike =
                    k > 0 && (toks[k - 1].kind == 'i' ||
                              toks[k - 1].text == "::");
                ProtoEvent ev;
                ev.name = t.text;
                ev.line = t.line;
                if (isCall && !declLike && t.text == "openPage") {
                    ev.kind = ProtoEvent::Open;
                } else if (isCall && !declLike &&
                           t.text == "closePage") {
                    ev.kind = ProtoEvent::Close;
                } else if (isCall && !declLike &&
                           (t.text == "writeEntryField32" ||
                            t.text == "writeEntryField64")) {
                    ev.kind = isFlip(toks, k) ? ProtoEvent::Flip
                                              : ProtoEvent::Write;
                } else if (callAt.count(k)) {
                    ev.kind = ProtoEvent::Call;
                    ev.callIdx = callAt[k];
                } else {
                    continue;
                }
                events_[fi].push_back(std::move(ev));
            }
        }
    }

    /** writeEntryField32 with both kOffState and kStateActive in its
     * argument list is the commit flip. */
    static bool
    isFlip(const std::vector<Tok> &toks, std::size_t i)
    {
        if (toks[i].text != "writeEntryField32")
            return false;
        bool offState = false;
        bool stateActive = false;
        const std::size_t close = matchForward(toks, i + 1);
        for (std::size_t j = i + 2; j < close && j < toks.size();
             ++j) {
            if (toks[j].text == "kOffState")
                offState = true;
            else if (toks[j].text == "kStateActive")
                stateActive = true;
        }
        return offState && stateActive;
    }

    /** Net delta a call site contributes: the candidate definition
     * with the largest nonzero delta magnitude (virtual-dispatch
     * stubs with delta 0 lose to the real implementation). */
    int
    callDelta(const Function &fn, const ProtoEvent &ev) const
    {
        int best = 0;
        for (std::size_t target :
             graph_.resolve(fn, fn.calls[ev.callIdx])) {
            const int d = delta_[target];
            if (d != 0 && std::abs(d) > std::abs(best))
                best = d;
        }
        return best;
    }

    void
    computeDeltas()
    {
        const auto &fns = graph_.functions();
        delta_.assign(fns.size(), 0);
        for (int pass = 0; pass < 20; ++pass) {
            bool changed = false;
            for (std::size_t fi = 0; fi < fns.size(); ++fi) {
                int d = 0;
                for (const ProtoEvent &ev : events_[fi]) {
                    if (ev.kind == ProtoEvent::Open)
                        ++d;
                    else if (ev.kind == ProtoEvent::Close)
                        --d;
                    else if (ev.kind == ProtoEvent::Call)
                        d += callDelta(fns[fi], ev);
                }
                d = std::clamp(d, -kClamp, kClamp);
                if (d != delta_[fi]) {
                    delta_[fi] = d;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
    }

    /** A ctor that nets open windows paired with a dtor of the same
     * class netting them closed is the RAII handoff idiom: the ctor
     * is exempt from the end-of-function check and the dtor starts
     * with the ctor's windows inherited. */
    void
    pairRaii()
    {
        const auto &fns = graph_.functions();
        raiiExempt_.assign(fns.size(), 0);
        entry_.assign(fns.size(), 0);
        for (std::size_t ci = 0; ci < fns.size(); ++ci) {
            const Function &ctor = fns[ci];
            if (ctor.className.empty() ||
                ctor.name != ctor.className || delta_[ci] <= 0)
                continue;
            for (std::size_t di = 0; di < fns.size(); ++di) {
                const Function &dtor = fns[di];
                if (dtor.className != ctor.className ||
                    dtor.name != "~" + ctor.className)
                    continue;
                if (delta_[di] == -delta_[ci]) {
                    raiiExempt_[ci] = 1;
                    entry_[di] =
                        std::max(entry_[di], delta_[ci]);
                }
            }
        }
    }

    void
    propagateEntries()
    {
        const auto &fns = graph_.functions();
        for (int pass = 0; pass < 20; ++pass) {
            bool changed = false;
            for (std::size_t fi = 0; fi < fns.size(); ++fi) {
                int open = entry_[fi];
                for (const ProtoEvent &ev : events_[fi]) {
                    switch (ev.kind) {
                      case ProtoEvent::Open:
                        ++open;
                        break;
                      case ProtoEvent::Close:
                        open = std::max(open - 1, 0);
                        break;
                      case ProtoEvent::Call:
                        for (std::size_t target : graph_.resolve(
                                 fns[fi], fn_calls(fi, ev))) {
                            const int inherited =
                                std::min(open, kClamp);
                            if (inherited > entry_[target]) {
                                entry_[target] = inherited;
                                changed = true;
                            }
                        }
                        open = std::clamp(
                            open + callDelta(fns[fi], ev), 0,
                            kClamp);
                        break;
                      default:
                        break;
                    }
                    open = std::min(open, kClamp);
                }
            }
            if (!changed)
                break;
        }
    }

    const CallSite &
    fn_calls(std::size_t fi, const ProtoEvent &ev) const
    {
        return graph_.functions()[fi].calls[ev.callIdx];
    }

    void
    check(std::vector<RawFinding> &out)
    {
        const auto &fns = graph_.functions();
        for (std::size_t fi = 0; fi < fns.size(); ++fi) {
            const Function &fn = fns[fi];
            // Inherited windows belong to *other* pages the callers
            // are working on (the UBC fill path holds its page's
            // window while the UFS fills it through the buffer
            // cache). `floor` tracks how many of those remain: the
            // flip check only counts windows opened locally, and a
            // close with no local window consumes an inherited one
            // (the beginWrite -> endWrite handoff).
            int open = entry_[fi];
            int floor = entry_[fi];
            int lastRaiseLine = fn.line;
            for (const ProtoEvent &ev : events_[fi]) {
                switch (ev.kind) {
                  case ProtoEvent::Open:
                    ++open;
                    lastRaiseLine = ev.line;
                    break;
                  case ProtoEvent::Close:
                    if (open <= 0) {
                        out.push_back(
                            {Rule::R6ShadowProtocol, fn.fileIndex,
                             ev.line,
                             "closePage without a matching "
                             "openPage"});
                    } else {
                        --open;
                        floor = std::min(floor, open);
                    }
                    break;
                  case ProtoEvent::Write:
                  case ProtoEvent::Flip:
                    if (open <= 0) {
                        out.push_back(
                            {Rule::R6ShadowProtocol, fn.fileIndex,
                             ev.line,
                             ev.name +
                                 " outside an openPage/closePage "
                                 "window; open the registry page "
                                 "first"});
                        break;
                    }
                    if (ev.kind == ProtoEvent::Flip &&
                        open - floor != 1) {
                        out.push_back(
                            {Rule::R6ShadowProtocol, fn.fileIndex,
                             ev.line,
                             "state flip to Active while another "
                             "page window is still open; close the "
                             "data page before committing"});
                    }
                    break;
                  case ProtoEvent::Call: {
                    const int d = callDelta(fn, ev);
                    if (open + d < 0) {
                        out.push_back(
                            {Rule::R6ShadowProtocol, fn.fileIndex,
                             ev.line,
                             "call to " + ev.name +
                                 "() closes a protocol window, but "
                                 "none is open here"});
                    }
                    if (d > 0)
                        lastRaiseLine = ev.line;
                    open = std::clamp(open + d, 0, kClamp);
                    floor = std::min(floor, open);
                    break;
                  }
                }
            }
            if (open > entry_[fi] && !graph_.hasCallers(fi) &&
                !raiiExempt_[fi]) {
                out.push_back(
                    {Rule::R6ShadowProtocol, fn.fileIndex,
                     lastRaiseLine,
                     "openPage window still open at function end; "
                     "every open needs a matching closePage"});
            }
        }
    }
};

/**
 * R9: journal-transaction typestate. The ext3-grade journal's
 * correctness argument is an ordering: txBegin opens a compound
 * transaction, txAppend stages block images into it, txCommit seals
 * it behind a commit record, and checkpoint rewrites home copies
 * only for sealed transactions (the write-ahead rule). Modeled on R6
 * but function-local: each function's body is a linear automaton
 * over the four call tokens, flagging
 *  - txAppend with no transaction open — the image has no
 *    transaction to ride and would never reach a commit record;
 *  - txCommit with no transaction open — commits an empty window
 *    (the sanctioned cross-syscall close in commitTransaction
 *    carries the one allow annotation);
 *  - txBegin while a transaction is already open — compound
 *    transactions never nest;
 *  - checkpoint while a transaction is open — home copies would be
 *    rewritten ahead of the commit record, breaking write-ahead;
 *  - a transaction still open at function end — nothing seals it,
 *    so a crash discards every staged image silently.
 */
class JournalAnalysis
{
  public:
    explicit JournalAnalysis(const CallGraph &graph) : graph_(graph)
    {
    }

    void
    run(std::vector<RawFinding> &out)
    {
        const auto &fns = graph_.functions();
        for (std::size_t fi = 0; fi < fns.size(); ++fi) {
            const Function &fn = fns[fi];
            const auto &toks = graph_.file(fn.fileIndex).scan.toks;
            bool open = false;
            int openLine = fn.line;
            for (std::size_t k = fn.bodyBegin;
                 k <= fn.bodyEnd && k < toks.size(); ++k) {
                const Tok &t = toks[k];
                if (t.kind != 'i')
                    continue;
                const bool isCall =
                    k + 1 < toks.size() && toks[k + 1].text == "(";
                const bool declLike =
                    k > 0 && (toks[k - 1].kind == 'i' ||
                              toks[k - 1].text == "::");
                if (!isCall || declLike)
                    continue;
                if (t.text == "txBegin") {
                    if (open) {
                        out.push_back(
                            {Rule::R9JournalTx, fn.fileIndex, t.line,
                             "txBegin while a transaction is already "
                             "open; compound transactions never "
                             "nest"});
                    }
                    open = true;
                    openLine = t.line;
                } else if (t.text == "txAppend") {
                    if (!open) {
                        out.push_back(
                            {Rule::R9JournalTx, fn.fileIndex, t.line,
                             "txAppend outside an open transaction; "
                             "call txBegin first"});
                    }
                } else if (t.text == "txCommit") {
                    if (!open) {
                        out.push_back(
                            {Rule::R9JournalTx, fn.fileIndex, t.line,
                             "txCommit with no transaction open "
                             "here"});
                    }
                    open = false;
                } else if (t.text == "checkpoint") {
                    if (open) {
                        out.push_back(
                            {Rule::R9JournalTx, fn.fileIndex, t.line,
                             "checkpoint while a transaction is "
                             "open; home copies must not be "
                             "rewritten ahead of the commit record "
                             "(write-ahead rule)"});
                    }
                }
            }
            if (open) {
                out.push_back(
                    {Rule::R9JournalTx, fn.fileIndex, openLine,
                     "transaction still open at function end; "
                     "nothing seals it behind a commit record"});
            }
        }
    }

  private:
    const CallGraph &graph_;
};

// ---------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
}

struct Tally
{
    int violations = 0;
    int allowed = 0;
};

// ---------------------------------------------------------------------
// Whole-program driver
// ---------------------------------------------------------------------

Report
lintProgram(const std::vector<SourceFile> &files)
{
    Report report;

    std::vector<AllowMap> allows;
    allows.reserve(files.size());
    for (const SourceFile &file : files)
        allows.emplace_back(file.scan);

    // Per-file rules.
    for (std::size_t f = 0; f < files.size(); ++f) {
        Linter lint{files[f].path, files[f].scan.toks, allows[f],
                    report.findings};
        runR1(lint);
        runR2(lint);
        runR4(lint);
        runR5(lint);
    }

    // Whole-program rules over the call graph.
    const CallGraph graph(files);
    std::vector<RawFinding> raw;
    ProtocolAnalysis protocol(graph);
    protocol.run(raw);
    JournalAnalysis journal(graph);
    journal.run(raw);
    LockAnalysis locks(graph);
    locks.run(raw);
    report.lockDot = locks.dot();
    report.lockJson = locks.jsonReport();

    for (const RawFinding &rf : raw) {
        Finding finding;
        finding.rule = rf.rule;
        finding.file = files[rf.fileIndex].path;
        finding.line = rf.line;
        finding.message = rf.message;
        if (const Annotation *note =
                allows[rf.fileIndex].lookup(rf.line, rf.rule)) {
            finding.allowed = true;
            finding.reason = note->reason;
        }
        report.findings.push_back(std::move(finding));
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line) <
                         std::tie(b.file, b.line);
              });
    return report;
}

} // namespace

const char *
ruleId(Rule rule)
{
    switch (rule) {
      case Rule::R1CheckedStore: return "R1";
      case Rule::R2Determinism: return "R2";
      case Rule::R3LockOrder: return "R3";
      case Rule::R4ErrorFlow: return "R4";
      case Rule::R5RegistryMutation: return "R5";
      case Rule::R6ShadowProtocol: return "R6";
      case Rule::R7DeadlockCycle: return "R7";
      case Rule::R8CrashWhileLocked: return "R8";
      case Rule::R9JournalTx: return "R9";
    }
    return "?";
}

const char *
ruleTitle(Rule rule)
{
    switch (rule) {
      case Rule::R1CheckedStore:
        return "checked-store discipline";
      case Rule::R2Determinism:
        return "determinism";
      case Rule::R3LockOrder:
        return "lock-rank lattice";
      case Rule::R4ErrorFlow:
        return "error flow";
      case Rule::R5RegistryMutation:
        return "registry mutation protocol";
      case Rule::R6ShadowProtocol:
        return "shadow-page protocol typestate";
      case Rule::R7DeadlockCycle:
        return "deadlock-potential lock cycle";
      case Rule::R8CrashWhileLocked:
        return "crash-capable operation under bare lock";
      case Rule::R9JournalTx:
        return "journal-transaction typestate";
    }
    return "?";
}

int
Report::violations() const
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [](const Finding &f) { return !f.allowed; }));
}

int
Report::allowed() const
{
    return static_cast<int>(findings.size()) - violations();
}

std::string
Report::text() const
{
    std::ostringstream out;
    for (const Finding &f : findings) {
        out << f.file << ":" << f.line << ": [" << ruleId(f.rule)
            << "] " << f.message;
        if (f.allowed) {
            out << " (allowed";
            if (!f.reason.empty())
                out << ": " << f.reason;
            out << ")";
        }
        out << "\n";
    }
    out << "riolint: " << violations() << " violation(s), "
        << allowed() << " allowed\n";
    return out.str();
}

std::string
Report::json() const
{
    std::map<std::string, Tally> byRule;
    std::map<std::string, Tally> byDir;
    for (const Finding &f : findings) {
        Tally &rule = byRule[ruleId(f.rule)];
        Tally &dir = byDir[dirOf(f.file)];
        if (f.allowed) {
            ++rule.allowed;
            ++dir.allowed;
        } else {
            ++rule.violations;
            ++dir.violations;
        }
    }

    std::ostringstream out;
    out << "{\n";
    out << "  \"violations\": " << violations() << ",\n";
    out << "  \"allowed\": " << allowed() << ",\n";

    auto emitTallies = [&](const char *key,
                           const std::map<std::string, Tally> &map) {
        out << "  \"" << key << "\": {";
        bool first = true;
        for (const auto &[name, tally] : map) {
            out << (first ? "\n" : ",\n");
            out << "    \"" << jsonEscape(name)
                << "\": {\"violations\": " << tally.violations
                << ", \"allowed\": " << tally.allowed << "}";
            first = false;
        }
        out << (first ? "},\n" : "\n  },\n");
    };
    emitTallies("rules", byRule);
    emitTallies("directories", byDir);

    out << "  \"findings\": [";
    bool first = true;
    for (const Finding &f : findings) {
        out << (first ? "\n" : ",\n");
        out << "    {\"rule\": \"" << ruleId(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"allowed\": "
            << (f.allowed ? "true" : "false") << ", \"message\": \""
            << jsonEscape(f.message) << "\"";
        if (f.allowed)
            out << ", \"reason\": \"" << jsonEscape(f.reason) << "\"";
        out << "}";
        first = false;
    }
    out << (first ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content)
{
    std::vector<SourceFile> files;
    files.push_back({path, tokenize(content)});
    return lintProgram(files).findings;
}

Report
lintFiles(const std::vector<std::string> &paths,
          const std::string &root)
{
    Report report;
    std::vector<SourceFile> files;
    for (const std::string &path : paths) {
        const std::filesystem::path full =
            std::filesystem::path(root) / path;
        std::ifstream in(full, std::ios::binary);
        if (!in) {
            Finding finding;
            finding.rule = Rule::R4ErrorFlow;
            finding.file = path;
            finding.message = "riolint: cannot open file";
            report.findings.push_back(std::move(finding));
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        files.push_back({path, tokenize(buf.str())});
    }
    Report program = lintProgram(files);
    report.findings.insert(report.findings.end(),
                           program.findings.begin(),
                           program.findings.end());
    report.lockDot = std::move(program.lockDot);
    report.lockJson = std::move(program.lockJson);
    return report;
}

Report
lintTree(const std::string &root)
{
    static const char *kRoots[] = {"src", "bench", "examples",
                                   "tools"};
    std::vector<std::string> paths;
    for (const char *sub : kRoots) {
        const std::filesystem::path base =
            std::filesystem::path(root) / sub;
        if (!std::filesystem::is_directory(base))
            continue;
        for (const auto &entry :
             std::filesystem::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext =
                entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp")
                continue;
            paths.push_back(
                std::filesystem::relative(entry.path(), root)
                    .generic_string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return lintFiles(paths, root);
}

} // namespace riolint
