/**
 * @file
 * riolint — a static pass enforcing the paper's protection discipline.
 *
 * Rio's reliability argument rests on a single invariant: the only
 * way kernel code modifies the file cache or its registry is through
 * the checked store path (MemBus translate -> protection check ->
 * store). The simulator mirrors that argument in code, and riolint
 * is its static counterpart: a tokenizer-level pass over the src
 * tree that flags every construct which could bypass the path, break
 * crash determinism, or drop an error on the floor. It is a
 * tokenizer, not a compiler: deliberately simple, zero dependencies,
 * and tuned to this codebase's idiom.
 *
 * Rules:
 *  - R1 checked-store: PhysMem::raw(), memcpy/memmove/memset into
 *    memory images, and Disk::store_ are forbidden outside the
 *    whitelisted simulator internals.
 *  - R2 determinism: wall-clock and libc randomness (rand, time,
 *    std::random_device, system/steady clocks) are forbidden outside
 *    support/rng and sim/clock — results must be seed-reproducible.
 *  - R3 lock-order: named kernel locks must be acquired in the
 *    canonical order fsLock_ < bufLock_ < ubcLock_.
 *  - R4 error-flow: status-returning functions must be [[nodiscard]]
 *    (Result already is, class-level) and statement-position calls
 *    to local status-returning functions must consume the result.
 *  - R5 registry-mutation: Registry entry writes (writeEntryField*)
 *    are legal only inside the shadow-page protocol entry points in
 *    core/rio.cc.
 *  - R6 shadow-protocol: the protocol is a typestate —
 *    openPage -> writeEntryField* -> closePage -> state flip. Within
 *    a function, a registry field write outside an open window, a
 *    flip to Active while more than one window is open (data page
 *    not yet closed), an unmatched closePage, and a window left open
 *    at function end are all flagged.
 *
 * A violation is silenced by annotating the offending line (or the
 * line above it) with `// riolint:allow(R<n>) <reason>`. Suppressed
 * findings still appear in the report, marked allowed.
 */

#ifndef RIOLINT_LINT_HH
#define RIOLINT_LINT_HH

#include <string>
#include <vector>

namespace riolint
{

enum class Rule
{
    R1CheckedStore,
    R2Determinism,
    R3LockOrder,
    R4ErrorFlow,
    R5RegistryMutation,
    R6ShadowProtocol,
};

/** Short rule id, e.g. "R1". */
const char *ruleId(Rule rule);

/** One-line rule description for diagnostics. */
const char *ruleTitle(Rule rule);

struct Finding
{
    Rule rule;
    std::string file; ///< Path as given (relative to the lint root).
    int line = 0;
    std::string message;
    bool allowed = false; ///< Suppressed by a riolint:allow comment.
    std::string reason;   ///< Text following the allow annotation.
};

struct Report
{
    std::vector<Finding> findings;

    /** Unsuppressed violations — the CI-gating count. */
    int violations() const;
    /** Findings suppressed by riolint:allow annotations. */
    int allowed() const;

    /** Human-readable diagnostics, one line per finding. */
    std::string text() const;
    /** Machine-readable report with per-rule and per-directory
     * {violations, allowed} counts. */
    std::string json() const;
};

/** Lint one in-memory source (used by the fixture tests). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Lint files on disk; paths are interpreted relative to @p root and
 * reported as given. */
Report lintFiles(const std::vector<std::string> &paths,
                 const std::string &root);

/** Recursively lint every .hh/.cc under <root>/src. */
Report lintTree(const std::string &root);

} // namespace riolint

#endif // RIOLINT_LINT_HH
