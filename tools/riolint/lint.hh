/**
 * @file
 * riolint — a static pass enforcing the paper's protection discipline.
 *
 * Rio's reliability argument rests on a single invariant: the only
 * way kernel code modifies the file cache or its registry is through
 * the checked store path (MemBus translate -> protection check ->
 * store). The simulator mirrors that argument in code, and riolint
 * is its static counterpart: a tokenizer-level pass over the tree
 * that flags every construct which could bypass the path, break
 * crash determinism, or drop an error on the floor. It is a
 * tokenizer, not a compiler: deliberately simple, zero dependencies,
 * and tuned to this codebase's idiom. Since the whole-program
 * rewrite it builds a call graph over the token stream (callgraph.hh)
 * and propagates lock sets and protocol windows through calls
 * (lockgraph.hh).
 *
 * Rules:
 *  - R1 checked-store: PhysMem::raw(), memcpy/memmove/memset into
 *    memory images, and Disk::store_ are forbidden outside the
 *    whitelisted simulator internals.
 *  - R2 determinism: wall-clock and libc randomness (rand, time,
 *    std::random_device, system/steady clocks) are forbidden outside
 *    support/rng and sim/clock — results must be seed-reproducible.
 *  - R3 lock-rank lattice: every LockTable::add site declares its
 *    lock's rank with `// riolint:rank(name, N)`; acquiring a lock
 *    whose rank is <= the rank of any lock already held — directly
 *    or through any call chain — is a violation, as is an add site
 *    whose annotation is missing or drifts from the code.
 *  - R4 error-flow: status-returning functions must be [[nodiscard]]
 *    (Result already is, class-level) and statement-position calls
 *    to local status-returning functions must consume the result —
 *    including `this->`-qualified calls, the last call of a `a.b().c()`
 *    chain, and calls inside statement-level comma expressions.
 *  - R5 registry-mutation: Registry entry writes (writeEntryField*)
 *    are legal only inside the shadow-page protocol entry points in
 *    core/rio.cc.
 *  - R6 shadow-protocol: the protocol is a typestate —
 *    openPage -> writeEntryField* -> closePage -> state flip. Window
 *    counts propagate through the call graph, so the sanctioned
 *    beginWrite -> endWrite handoff is tracked through the callers
 *    that pair them (including RAII ctor/dtor pairs) instead of
 *    being special-cased by name.
 *  - R7 deadlock-potential: a cycle in the acquired-while-held
 *    graph (built over the same interprocedural lock sets as R3)
 *    means two call paths can wait on each other.
 *  - R8 crash-under-lock: reaching a crash-capable operation (disk
 *    I/O, sim-time advance, fault hooks) while a lock is held by a
 *    bare acquire() — no RAII Guard, so a crash unwind skips the
 *    release — or a bare acquire with no release on any path.
 *  - R9 journal-transaction typestate: the ext3-grade journal's
 *    compound-transaction order — txBegin -> txAppend* -> txCommit,
 *    checkpoint only with no transaction open (write-ahead rule),
 *    no nesting, nothing left open at function end. Function-local,
 *    modeled on R6's token automaton.
 *
 * A violation is silenced by annotating the offending line (or the
 * line above it) with `// riolint:allow(R<n>) <reason>`. Suppressed
 * findings still appear in the report, marked allowed.
 */

#ifndef RIOLINT_LINT_HH
#define RIOLINT_LINT_HH

#include <string>
#include <vector>

namespace riolint
{

enum class Rule
{
    R1CheckedStore,
    R2Determinism,
    R3LockOrder,
    R4ErrorFlow,
    R5RegistryMutation,
    R6ShadowProtocol,
    R7DeadlockCycle,
    R8CrashWhileLocked,
    R9JournalTx,
};

/** Short rule id, e.g. "R1". */
const char *ruleId(Rule rule);

/** One-line rule description for diagnostics. */
const char *ruleTitle(Rule rule);

struct Finding
{
    Rule rule;
    std::string file; ///< Path as given (relative to the lint root).
    int line = 0;
    std::string message;
    bool allowed = false; ///< Suppressed by a riolint:allow comment.
    std::string reason;   ///< Text following the allow annotation.
};

struct Report
{
    std::vector<Finding> findings;

    /** Lock graph as Graphviz DOT (nodes = locks with ranks, edges =
     * acquired-while-held, cycles highlighted). Filled by
     * lintFiles/lintTree. */
    std::string lockDot;
    /** Lock graph as JSON (locks, ranks, edges, cycles). */
    std::string lockJson;

    /** Unsuppressed violations — the CI-gating count. */
    int violations() const;
    /** Findings suppressed by riolint:allow annotations. */
    int allowed() const;

    /** Human-readable diagnostics, one line per finding. */
    std::string text() const;
    /** Machine-readable report with per-rule and per-directory
     * {violations, allowed} counts. */
    std::string json() const;
};

/** Lint one in-memory source as a single-file program (used by the
 * fixture tests; interprocedural rules see just this file). */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/** Lint files on disk as one program; paths are interpreted relative
 * to @p root and reported as given. */
Report lintFiles(const std::vector<std::string> &paths,
                 const std::string &root);

/** Recursively lint every .cc/.hh/.cpp under <root>/{src,bench,
 * examples,tools} as one whole program. */
Report lintTree(const std::string &root);

} // namespace riolint

#endif // RIOLINT_LINT_HH
