#include "lockgraph.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace riolint
{

namespace
{

std::string
lowered(const std::string &text)
{
    std::string out = text;
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

/** Does this identifier look like a lock-table receiver or argument
 * (locks_, locks, lockTable, ...)? */
bool
looksLikeLockTable(const std::string &ident)
{
    return lowered(ident).find("lock") != std::string::npos;
}

/** Operations that can crash the simulated machine or advance
 * simulated time: the roots of the R8 crash-capable closure. */
const std::set<std::string> &
crashPrimitives()
{
    static const std::set<std::string> kPrims = {
        "crash",     "advance",   "enter",     "drain",
        "queueWrite", "retryRead", "retryWrite",
    };
    return kPrims;
}

std::string
jsonEscapeText(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

} // namespace

LockAnalysis::LockAnalysis(const CallGraph &graph) : graph_(graph) {}

bool
LockAnalysis::exempt(const Function &fn) const
{
    // The lock implementation itself (LockTable and its nested
    // Guard) manipulates generic lock ids; its bodies are not
    // acquisition sites of named kernel locks.
    return fn.qualified.find("LockTable") != std::string::npos;
}

int
LockAnalysis::rankOf(const std::string &lock) const
{
    auto it = ranks_.find(lock);
    return it == ranks_.end() ? 0 : it->second.rank;
}

void
LockAnalysis::harvestRankDecls(std::vector<RawFinding> &out)
{
    for (std::size_t f = 0; f < graph_.fileCount(); ++f) {
        for (const RankNote &note : graph_.file(f).scan.ranks) {
            auto it = ranks_.find(note.lock);
            if (it == ranks_.end()) {
                ranks_.emplace(note.lock,
                               RankDecl{note.rank, f, note.line});
                lockNames_.insert(note.lock);
            } else if (it->second.rank != note.rank) {
                std::ostringstream msg;
                msg << "conflicting riolint:rank declarations for "
                    << note.lock << ": " << it->second.rank
                    << " (first seen) vs " << note.rank;
                out.push_back({Rule::R3LockOrder, f, note.line,
                               msg.str()});
            }
        }
    }
}

void
LockAnalysis::checkAddSites(std::vector<RawFinding> &out)
{
    for (std::size_t f = 0; f < graph_.fileCount(); ++f) {
        const SourceFile &file = graph_.file(f);
        const auto &toks = file.scan.toks;

        // Bind each rank note to the code line it covers, the same
        // way allow annotations bind.
        const AllowMap cover(file.scan);
        std::map<int, const RankNote *> noteAt;
        for (const RankNote &note : file.scan.ranks) {
            const int line = cover.coveredLine(note.line);
            if (line >= 0)
                noteAt[line] = &note;
        }

        for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
            if (toks[i].kind != 'i' || toks[i].text != "add" ||
                toks[i + 1].text != "(")
                continue;
            const std::string &link = toks[i - 1].text;
            if (link != "." && link != "->")
                continue;
            if (toks[i - 2].kind != 'i' ||
                !looksLikeLockTable(toks[i - 2].text))
                continue;

            const int line = toks[i].line;
            auto note = noteAt.find(line);
            if (note == noteAt.end()) {
                out.push_back(
                    {Rule::R3LockOrder, f, line,
                     "LockTable::add without a riolint:rank(name, N)"
                     " annotation; every lock declares its lattice "
                     "rank beside its add site"});
                continue;
            }
            // Anti-drift: the annotation must name the variable the
            // id is stored into, and the declared rank literal must
            // appear in the call's arguments.
            std::string lhs;
            if (i >= 4 && toks[i - 3].text == "=" &&
                toks[i - 4].kind == 'i')
                lhs = toks[i - 4].text;
            if (!lhs.empty() && lhs != note->second->lock) {
                out.push_back({Rule::R3LockOrder, f, line,
                               "riolint:rank annotation names " +
                                   note->second->lock +
                                   " but the lock id is stored in " +
                                   lhs});
            }
            const std::size_t close = matchForward(toks, i + 1);
            const std::string wanted =
                std::to_string(note->second->rank);
            bool literalSeen = false;
            for (std::size_t j = i + 2; j < close; ++j) {
                if (toks[j].kind == 'n' && toks[j].text == wanted)
                    literalSeen = true;
            }
            if (!literalSeen) {
                out.push_back(
                    {Rule::R3LockOrder, f, line,
                     "riolint:rank declares rank " + wanted +
                         " but the add call does not pass that "
                         "literal; static lattice and runtime "
                         "lockdep would drift"});
            }
        }
    }
}

void
LockAnalysis::extractEvents()
{
    const auto &fns = graph_.functions();
    events_.assign(fns.size(), {});

    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
        const Function &fn = fns[fi];
        if (exempt(fn))
            continue;
        const auto &toks = graph_.file(fn.fileIndex).scan.toks;

        std::map<std::size_t, std::size_t> callAt;
        for (std::size_t c = 0; c < fn.calls.size(); ++c)
            callAt[fn.calls[c].tokIndex] = c;

        struct ActiveGuard
        {
            std::string lock;
            int depth;
        };
        std::vector<ActiveGuard> guards;
        int depth = 0;
        std::vector<LockEvent> &events = events_[fi];

        for (std::size_t k = fn.bodyBegin;
             k <= fn.bodyEnd && k < toks.size(); ++k) {
            const Tok &t = toks[k];
            if (t.text == "{") {
                ++depth;
                continue;
            }
            if (t.text == "}") {
                while (!guards.empty() &&
                       guards.back().depth == depth) {
                    LockEvent ev;
                    ev.kind = LockEvent::Release;
                    ev.lock = guards.back().lock;
                    ev.guard = true;
                    ev.line = t.line;
                    events.push_back(std::move(ev));
                    guards.pop_back();
                }
                --depth;
                continue;
            }
            if (t.kind != 'i')
                continue;

            // LockTable::Guard name(locks_, <lock>);
            if (t.text == "Guard") {
                std::size_t j = k + 1;
                if (j < toks.size() && toks[j].kind == 'i')
                    ++j; // Guard variable name.
                if (j + 3 < toks.size() && toks[j].text == "(" &&
                    toks[j + 1].kind == 'i' &&
                    looksLikeLockTable(toks[j + 1].text) &&
                    toks[j + 2].text == "," &&
                    toks[j + 3].kind == 'i') {
                    LockEvent ev;
                    ev.kind = LockEvent::Acquire;
                    ev.lock = toks[j + 3].text;
                    ev.guard = true;
                    ev.line = toks[j + 3].line;
                    events.push_back(std::move(ev));
                    guards.push_back({toks[j + 3].text, depth});
                    lockNames_.insert(toks[j + 3].text);
                }
                continue;
            }
            // locks_.acquire(<lock>) / release / releaseQuiet.
            const bool isAcquire = t.text == "acquire";
            const bool isRelease =
                t.text == "release" || t.text == "releaseQuiet";
            if ((isAcquire || isRelease) && k >= 2 &&
                k + 2 < toks.size() && toks[k + 1].text == "(" &&
                (toks[k - 1].text == "." ||
                 toks[k - 1].text == "->") &&
                toks[k - 2].kind == 'i' &&
                looksLikeLockTable(toks[k - 2].text) &&
                toks[k + 2].kind == 'i') {
                LockEvent ev;
                ev.kind = isAcquire ? LockEvent::Acquire
                                    : LockEvent::Release;
                ev.lock = toks[k + 2].text;
                ev.guard = false;
                ev.line = t.line;
                events.push_back(std::move(ev));
                lockNames_.insert(toks[k + 2].text);
                continue;
            }
            auto call = callAt.find(k);
            if (call != callAt.end()) {
                LockEvent ev;
                ev.kind = LockEvent::Call;
                ev.callIdx = call->second;
                ev.line = t.line;
                events.push_back(std::move(ev));
            }
        }
    }
}

void
LockAnalysis::propagateSummaries()
{
    const auto &fns = graph_.functions();
    transAcquires_.assign(fns.size(), {});
    transCrash_.assign(fns.size(), 0);

    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
        for (const LockEvent &ev : events_[fi]) {
            if (ev.kind == LockEvent::Acquire)
                transAcquires_[fi].insert(ev.lock);
        }
        for (const CallSite &call : fns[fi].calls) {
            if (crashPrimitives().count(call.name))
                transCrash_[fi] = 1;
        }
    }

    bool changed = true;
    int passes = 0;
    while (changed && passes < 30) {
        changed = false;
        ++passes;
        for (std::size_t fi = 0; fi < fns.size(); ++fi) {
            for (const CallSite &call : fns[fi].calls) {
                for (std::size_t target :
                     graph_.resolve(fns[fi], call)) {
                    for (const std::string &lock :
                         transAcquires_[target]) {
                        if (transAcquires_[fi].insert(lock).second)
                            changed = true;
                    }
                    if (transCrash_[target] && !transCrash_[fi]) {
                        transCrash_[fi] = 1;
                        changed = true;
                    }
                }
            }
        }
    }
}

void
LockAnalysis::analyzeFunctions(std::vector<RawFinding> &out)
{
    const auto &fns = graph_.functions();

    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
        const Function &fn = fns[fi];
        struct Held
        {
            std::string lock;
            bool bare;
            int line;
        };
        std::vector<Held> held;
        std::set<std::string> r8Flagged;

        auto latticeCheck = [&](const std::string &incoming,
                                const Held &holding, int line,
                                const std::string &via) {
            const int inRank = rankOf(incoming);
            const int heldRank = rankOf(holding.lock);
            if (inRank == 0 || heldRank == 0 || inRank > heldRank)
                return;
            std::ostringstream msg;
            msg << "acquires " << incoming << " (rank " << inRank
                << ") while holding " << holding.lock << " (rank "
                << heldRank << ")";
            if (!via.empty())
                msg << " via call to " << via << "()";
            msg << "; declared ranks must strictly increase "
                   "inward";
            out.push_back({Rule::R3LockOrder, fn.fileIndex, line,
                           msg.str()});
        };

        for (const LockEvent &ev : events_[fi]) {
            if (ev.kind == LockEvent::Acquire) {
                for (const Held &h : held) {
                    const auto key =
                        std::make_pair(h.lock, ev.lock);
                    if (!edges_.count(key)) {
                        edges_[key] = {"", fn.fileIndex, ev.line};
                    }
                    latticeCheck(ev.lock, h, ev.line, "");
                }
                held.push_back({ev.lock, !ev.guard, ev.line});
                continue;
            }
            if (ev.kind == LockEvent::Release) {
                for (auto it = held.rbegin(); it != held.rend();
                     ++it) {
                    if (it->lock == ev.lock) {
                        held.erase(std::next(it).base());
                        break;
                    }
                }
                continue;
            }
            // Call: fold in the callee's transitive lock set and
            // crash capability.
            const CallSite &call = fn.calls[ev.callIdx];
            const auto targets = graph_.resolve(fn, call);
            std::set<std::string> acquired;
            bool crashCapable =
                crashPrimitives().count(call.name) > 0;
            for (std::size_t target : targets) {
                acquired.insert(transAcquires_[target].begin(),
                                transAcquires_[target].end());
                if (transCrash_[target])
                    crashCapable = true;
            }
            for (const Held &h : held) {
                for (const std::string &lock : acquired) {
                    const auto key = std::make_pair(h.lock, lock);
                    const bool fresh = !edges_.count(key);
                    if (fresh) {
                        edges_[key] = {call.name, fn.fileIndex,
                                       ev.line};
                        latticeCheck(lock, h, ev.line, call.name);
                    }
                }
                if (h.bare && crashCapable &&
                    r8Flagged.insert(h.lock).second) {
                    out.push_back(
                        {Rule::R8CrashWhileLocked, fn.fileIndex,
                         ev.line,
                         "crash-capable call " + call.name +
                             "() while " + h.lock +
                             " is held by a bare acquire(); a "
                             "crash unwind skips the release — "
                             "use LockTable::Guard"});
                }
            }
        }
        for (const Held &h : held) {
            if (!h.bare)
                continue;
            out.push_back(
                {Rule::R8CrashWhileLocked, fn.fileIndex, h.line,
                 "acquire(" + h.lock +
                     ") without a matching release on every path; "
                     "a crash here leaves the lock held and the "
                     "next acquire deadlocks"});
        }
    }
}

void
LockAnalysis::findCycles(std::vector<RawFinding> &out)
{
    // Tarjan SCC over the lock graph; an SCC with more than one
    // node, or a self-edge, is deadlock potential.
    std::vector<std::string> nodes(lockNames_.begin(),
                                   lockNames_.end());
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        index[nodes[i]] = i;
    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (const auto &[key, info] : edges_) {
        if (index.count(key.first) && index.count(key.second))
            adj[index[key.first]].push_back(index[key.second]);
    }

    std::vector<int> low(nodes.size(), -1);
    std::vector<int> num(nodes.size(), -1);
    std::vector<char> onStack(nodes.size(), 0);
    std::vector<std::size_t> stack;
    int counter = 0;
    std::vector<std::vector<std::size_t>> sccs;

    // Iterative Tarjan (explicit work stack).
    struct Frame
    {
        std::size_t node;
        std::size_t edge;
    };
    for (std::size_t start = 0; start < nodes.size(); ++start) {
        if (num[start] != -1)
            continue;
        std::vector<Frame> work{{start, 0}};
        while (!work.empty()) {
            Frame &frame = work.back();
            const std::size_t v = frame.node;
            if (frame.edge == 0) {
                num[v] = low[v] = counter++;
                stack.push_back(v);
                onStack[v] = 1;
            }
            bool descended = false;
            while (frame.edge < adj[v].size()) {
                const std::size_t w = adj[v][frame.edge++];
                if (num[w] == -1) {
                    work.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[v] = std::min(low[v], num[w]);
            }
            if (descended)
                continue;
            if (low[v] == num[v]) {
                std::vector<std::size_t> scc;
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    onStack[w] = 0;
                    scc.push_back(w);
                    if (w == v)
                        break;
                }
                sccs.push_back(std::move(scc));
            }
            work.pop_back();
            if (!work.empty()) {
                Frame &parent = work.back();
                low[parent.node] =
                    std::min(low[parent.node], low[v]);
            }
        }
    }

    for (const auto &scc : sccs) {
        const bool selfLoop =
            scc.size() == 1 &&
            edges_.count({nodes[scc[0]], nodes[scc[0]]});
        if (scc.size() < 2 && !selfLoop)
            continue;
        std::vector<std::string> members;
        for (std::size_t v : scc)
            members.push_back(nodes[v]);
        std::sort(members.begin(), members.end());

        std::ostringstream msg;
        msg << "deadlock-potential cycle in the "
               "acquired-while-held graph:";
        std::size_t firstFile = 0;
        int firstLine = 0;
        bool haveSite = false;
        const std::set<std::string> memberSet(members.begin(),
                                              members.end());
        for (const auto &[key, info] : edges_) {
            if (!memberSet.count(key.first) ||
                !memberSet.count(key.second))
                continue;
            msg << " " << key.first << " -> " << key.second;
            if (!info.via.empty())
                msg << " (via " << info.via << "())";
            msg << ";";
            if (!haveSite) {
                firstFile = info.fileIndex;
                firstLine = info.line;
                haveSite = true;
            }
        }
        msg << " break the cycle or re-rank the locks";
        out.push_back({Rule::R7DeadlockCycle, firstFile, firstLine,
                       msg.str()});
        cycles_.push_back(std::move(members));
    }
}

void
LockAnalysis::run(std::vector<RawFinding> &out)
{
    harvestRankDecls(out);
    checkAddSites(out);
    extractEvents();
    propagateSummaries();
    analyzeFunctions(out);
    findCycles(out);
}

std::string
LockAnalysis::dot() const
{
    std::ostringstream out;
    out << "digraph rio_locks {\n";
    out << "  rankdir=LR;\n";
    out << "  node [shape=box, fontname=\"monospace\"];\n";
    std::set<std::string> inCycle;
    for (const auto &cycle : cycles_) {
        for (const std::string &lock : cycle)
            inCycle.insert(lock);
    }
    for (const std::string &lock : lockNames_) {
        out << "  \"" << lock << "\" [label=\"" << lock;
        const int rank = rankOf(lock);
        if (rank != 0)
            out << "\\nrank " << rank;
        else
            out << "\\nunranked";
        out << "\"";
        if (inCycle.count(lock))
            out << ", color=red";
        out << "];\n";
    }
    for (const auto &[key, info] : edges_) {
        out << "  \"" << key.first << "\" -> \"" << key.second
            << "\" [label=\"";
        if (!info.via.empty())
            out << "via " << info.via << "\\n";
        out << graph_.file(info.fileIndex).path << ":" << info.line
            << "\"";
        if (inCycle.count(key.first) && inCycle.count(key.second))
            out << ", color=red";
        out << "];\n";
    }
    out << "}\n";
    return out.str();
}

std::string
LockAnalysis::jsonReport() const
{
    std::ostringstream out;
    out << "{\n  \"locks\": [";
    bool first = true;
    for (const std::string &lock : lockNames_) {
        out << (first ? "\n" : ",\n");
        out << "    {\"name\": \"" << jsonEscapeText(lock)
            << "\", \"rank\": " << rankOf(lock);
        auto decl = ranks_.find(lock);
        if (decl != ranks_.end()) {
            out << ", \"declared\": \""
                << jsonEscapeText(
                       graph_.file(decl->second.fileIndex).path)
                << ":" << decl->second.line << "\"";
        }
        out << "}";
        first = false;
    }
    out << (first ? "],\n" : "\n  ],\n");

    out << "  \"edges\": [";
    first = true;
    for (const auto &[key, info] : edges_) {
        out << (first ? "\n" : ",\n");
        out << "    {\"from\": \"" << jsonEscapeText(key.first)
            << "\", \"to\": \"" << jsonEscapeText(key.second)
            << "\", \"via\": \"" << jsonEscapeText(info.via)
            << "\", \"site\": \""
            << jsonEscapeText(graph_.file(info.fileIndex).path)
            << ":" << info.line << "\"}";
        first = false;
    }
    out << (first ? "],\n" : "\n  ],\n");

    out << "  \"cycles\": [";
    first = true;
    for (const auto &cycle : cycles_) {
        out << (first ? "\n" : ",\n");
        out << "    [";
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            out << (i ? ", " : "") << "\""
                << jsonEscapeText(cycle[i]) << "\"";
        }
        out << "]";
        first = false;
    }
    out << (first ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

} // namespace riolint
