/**
 * @file
 * riolint lock analysis: rank-lattice R3, deadlock-cycle R7, and
 * crash-under-lock R8 over the whole-program call graph.
 *
 * The paper makes synchronization faults (missed acquires and missed
 * releases, §2.1) a first-class crash cause; the kernel mirrors them
 * in os/locks. This analysis is the static side of that mirror:
 *
 *  - Ranks are *declared*, not hard-coded: each `LockTable::add`
 *    site carries a `// riolint:rank(name, N)` annotation, and the
 *    same literal N must appear in the call's arguments (so the
 *    static lattice and the runtime lockdep validator cannot drift).
 *  - Lock sets propagate through calls: `Guard g(locks_, L)` and
 *    bare `locks_.acquire(L)` sites feed a per-function summary,
 *    closed transitively over the call graph with union resolution
 *    for virtual dispatch.
 *  - R3: acquiring a lock whose declared rank is <= the rank of any
 *    lock already held — directly or inside any callee — violates
 *    the lattice. Unranked locks are exempt from R3 (they still
 *    feed R7/R8).
 *  - R7: every acquired-while-held pair is an edge; a cycle (two
 *    paths that nest the same locks in opposite orders, or a direct
 *    self-nesting) is deadlock potential even when each path looks
 *    locally consistent.
 *  - R8: crash-capable operations (machine crash hooks, sim-time
 *    advance, fault-hook `enter`, disk I/O and its retry wrappers)
 *    reached while a lock is held by a *bare* acquire — no RAII
 *    Guard, so a CrashException unwind skips the release and the
 *    next acquire deadlocks the rebooted kernel.
 *
 * The analysis also renders the acquired-while-held graph as DOT and
 * JSON for the CI artifacts.
 */

#ifndef RIOLINT_LOCKGRAPH_HH
#define RIOLINT_LOCKGRAPH_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hh"

namespace riolint
{

/** A finding not yet bound to a file path / allow annotation; the
 * caller resolves those against the per-file AllowMap. */
struct RawFinding
{
    Rule rule;
    std::size_t fileIndex = 0;
    int line = 0;
    std::string message;
};

class LockAnalysis
{
  public:
    explicit LockAnalysis(const CallGraph &graph);

    /** Run R3 (lattice + annotation drift), R7 and R8; append raw
     * findings. */
    void run(std::vector<RawFinding> &out);

    /** Graphviz DOT rendering of the acquired-while-held graph. */
    std::string dot() const;
    /** JSON rendering: locks, ranks, edges, cycles. */
    std::string jsonReport() const;

  private:
    struct LockEvent
    {
        enum Kind
        {
            Acquire,
            Release,
            Call,
        };
        Kind kind = Acquire;
        std::string lock;     ///< Acquire/Release.
        bool guard = false;   ///< RAII acquire (scope-released).
        std::size_t callIdx = 0;
        int line = 0;
    };

    struct RankDecl
    {
        int rank = 0;
        std::size_t fileIndex = 0;
        int line = 0;
    };

    struct EdgeInfo
    {
        std::string via; ///< Callee name for interprocedural edges.
        std::size_t fileIndex = 0;
        int line = 0;
    };

    const CallGraph &graph_;
    std::vector<std::vector<LockEvent>> events_;
    std::vector<std::set<std::string>> transAcquires_;
    std::vector<char> transCrash_;
    std::map<std::string, RankDecl> ranks_;
    std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
    std::vector<std::vector<std::string>> cycles_;
    std::set<std::string> lockNames_;

    void harvestRankDecls(std::vector<RawFinding> &out);
    void checkAddSites(std::vector<RawFinding> &out);
    void extractEvents();
    void propagateSummaries();
    void analyzeFunctions(std::vector<RawFinding> &out);
    void findCycles(std::vector<RawFinding> &out);

    int rankOf(const std::string &lock) const;
    bool exempt(const Function &fn) const;
};

} // namespace riolint

#endif // RIOLINT_LOCKGRAPH_HH
