/**
 * @file
 * riolint CLI.
 *
 * Usage:
 *   riolint [--root DIR] [--json FILE] [--lock-dot FILE]
 *           [--lock-json FILE] [file...]
 *
 * With no file arguments, lints every .cc/.hh/.cpp under
 * <root>/{src,bench,examples,tools} as one whole program. Exits 1 if
 * any unannotated violation is found; the human-readable diagnostics
 * go to stdout. --json writes the machine-readable report (per-rule
 * and per-directory counts); --lock-dot and --lock-json write the
 * acquired-while-held lock graph (Graphviz / JSON) for the CI
 * artifacts.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "riolint: cannot write " << path << "\n";
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string jsonPath;
    std::string lockDotPath;
    std::string lockJsonPath;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--lock-dot" && i + 1 < argc) {
            lockDotPath = argv[++i];
        } else if (arg == "--lock-json" && i + 1 < argc) {
            lockJsonPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: riolint [--root DIR] [--json FILE] "
                         "[--lock-dot FILE] [--lock-json FILE] "
                         "[file...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "riolint: unknown option " << arg << "\n";
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    const riolint::Report report =
        files.empty() ? riolint::lintTree(root)
                      : riolint::lintFiles(files, root);

    std::cout << report.text();
    if (!jsonPath.empty() && !writeFile(jsonPath, report.json()))
        return 2;
    if (!lockDotPath.empty() &&
        !writeFile(lockDotPath, report.lockDot))
        return 2;
    if (!lockJsonPath.empty() &&
        !writeFile(lockJsonPath, report.lockJson))
        return 2;
    return report.violations() == 0 ? 0 : 1;
}
