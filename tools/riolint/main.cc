/**
 * @file
 * riolint CLI.
 *
 * Usage:
 *   riolint [--root DIR] [--json FILE] [file...]
 *
 * With no file arguments, lints every .cc/.hh under <root>/src.
 * Exits 1 if any unannotated violation is found; the human-readable
 * diagnostics go to stdout, and --json additionally writes the
 * machine-readable report (per-rule and per-directory counts).
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string jsonPath;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: riolint [--root DIR] [--json FILE] "
                         "[file...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "riolint: unknown option " << arg << "\n";
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    const riolint::Report report =
        files.empty() ? riolint::lintTree(root)
                      : riolint::lintFiles(files, root);

    std::cout << report.text();
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::cerr << "riolint: cannot write " << jsonPath << "\n";
            return 2;
        }
        out << report.json();
    }
    return report.violations() == 0 ? 0 : 1;
}
